#include "rbf/rbffd.hpp"

#include <cmath>

#include "la/robust_solve.hpp"
#include "util/metrics.hpp"
#include "util/trace.hpp"

namespace updec::rbf {

RbffdOperators::RbffdOperators(const pc::PointCloud& cloud,
                               const Kernel& kernel, const RbffdConfig& config)
    : cloud_(&cloud), kernel_(&kernel), config_(config), tree_(cloud) {
  UPDEC_TRACE_SCOPE("rbf/rbffd_stencils");
  const MonomialBasis basis(config_.poly_degree);
  UPDEC_REQUIRE(config_.stencil_size > 2 * basis.size(),
                "stencil must be larger than twice the polynomial basis "
                "(unisolvency safety margin)");
  UPDEC_REQUIRE(config_.stencil_size <= cloud.size(),
                "stencil larger than the cloud");
  stencils_.resize(cloud.size());
  for (std::size_t i = 0; i < cloud.size(); ++i)
    stencils_[i] = tree_.k_nearest(cloud.node(i).pos, config_.stencil_size);
  UPDEC_METRIC_ADD("rbf/rbffd.stencils", cloud.size());
}

la::CsrMatrix RbffdOperators::weights_for(const LinearOp& op) const {
  UPDEC_TRACE_SCOPE("rbf/rbffd_weights");
  UPDEC_METRIC_ADD("rbf/rbffd.operators_built", 1);
  const std::size_t n = cloud_->size();
  const std::size_t k = config_.stencil_size;
  const MonomialBasis basis(config_.poly_degree);
  const std::size_t m = basis.size();

  // Row-major CSR with exactly k entries per row; rows are independent.
  std::vector<std::size_t> row_ptr(n + 1);
  for (std::size_t i = 0; i <= n; ++i) row_ptr[i] = i * k;
  std::vector<std::size_t> col_idx(n * k);
  std::vector<double> values(n * k);

#ifdef UPDEC_HAVE_OPENMP
#pragma omp parallel for schedule(static)
#endif
  for (std::ptrdiff_t ii = 0; ii < static_cast<std::ptrdiff_t>(n); ++ii) {
    const auto i = static_cast<std::size_t>(ii);
    const auto& stencil = stencils_[i];
    const pc::Vec2 centre = cloud_->node(i).pos;

    // Shift to the stencil centre and scale by the stencil radius: keeps the
    // local PHS system well conditioned independent of the global h.
    double radius = 0.0;
    for (const std::size_t j : stencil)
      radius = std::max(radius, pc::distance(cloud_->node(j).pos, centre));
    UPDEC_REQUIRE(radius > 0.0, "degenerate stencil (duplicate nodes?)");
    const double inv_h = 1.0 / radius;

    std::vector<pc::Vec2> local(k);
    for (std::size_t a = 0; a < k; ++a) {
      const pc::Vec2 p = cloud_->node(stencil[a]).pos;
      local[a] = {(p.x - centre.x) * inv_h, (p.y - centre.y) * inv_h};
    }

    // Saddle system [Phi P; P^T 0] [w; v] = [L phi | L P] evaluated at the
    // centre (the local origin). With v(xi) = u(centre + radius * xi),
    // du/dx = (1/radius) dv/dxi and Lap u = (1/radius^2) Lap v, so the
    // physical operator L maps to L_s = {id, ddx/radius, ddy/radius,
    // lap/radius^2} in scaled coordinates, and the resulting weights apply
    // to the physical nodal values u(x_b) directly.
    const LinearOp scaled{op.id, op.ddx * inv_h, op.ddy * inv_h,
                          op.lap * inv_h * inv_h};
    la::Matrix system(k + m, k + m, 0.0);
    for (std::size_t a = 0; a < k; ++a) {
      for (std::size_t b = 0; b < k; ++b)
        system(a, b) = kernel_->phi(pc::distance(local[a], local[b]));
      for (std::size_t q = 0; q < m; ++q) {
        const double pv = basis.evaluate(q, local[a]);
        system(a, k + q) = pv;
        system(k + q, a) = pv;
      }
    }
    la::Vector rhs(k + m, 0.0);
    const pc::Vec2 origin{0.0, 0.0};
    for (std::size_t b = 0; b < k; ++b)
      rhs[b] = apply_kernel(*kernel_, scaled, origin, local[b]);
    for (std::size_t q = 0; q < m; ++q)
      rhs[k + q] = basis.apply(q, scaled, origin);

    // Robust factor: a degenerate stencil (duplicated or collinear nodes)
    // escalates to a Tikhonov-shifted solve instead of aborting assembly.
    const la::Vector w = la::robust_lu_factor(system).solve(rhs);
    for (std::size_t a = 0; a < k; ++a) {
      col_idx[i * k + a] = stencil[a];
      values[i * k + a] = w[a];
    }
  }

  // Each row's column indices must be sorted for CsrMatrix::at().
  for (std::size_t i = 0; i < n; ++i) {
    // insertion sort of (col, val) pairs within the row (k is small)
    for (std::size_t a = 1; a < k; ++a) {
      std::size_t c = col_idx[i * k + a];
      double v = values[i * k + a];
      std::size_t b = a;
      while (b > 0 && col_idx[i * k + b - 1] > c) {
        col_idx[i * k + b] = col_idx[i * k + b - 1];
        values[i * k + b] = values[i * k + b - 1];
        --b;
      }
      col_idx[i * k + b] = c;
      values[i * k + b] = v;
    }
  }
  return la::CsrMatrix(n, n, std::move(row_ptr), std::move(col_idx),
                       std::move(values));
}

const la::CsrMatrix& RbffdOperators::dx() const {
  if (!dx_) dx_ = std::make_unique<la::CsrMatrix>(weights_for(LinearOp::d_dx()));
  return *dx_;
}

const la::CsrMatrix& RbffdOperators::dy() const {
  if (!dy_) dy_ = std::make_unique<la::CsrMatrix>(weights_for(LinearOp::d_dy()));
  return *dy_;
}

const la::CsrMatrix& RbffdOperators::laplacian() const {
  if (!lap_)
    lap_ = std::make_unique<la::CsrMatrix>(weights_for(LinearOp::laplacian()));
  return *lap_;
}

la::CsrMatrix consistent_laplacian(const la::CsrMatrix& dx,
                                   const la::CsrMatrix& dy,
                                   const std::vector<std::uint8_t>& row_mask) {
  UPDEC_TRACE_SCOPE("rbf/consistent_laplacian");
  return la::add(1.0, la::multiply(dx, dx, &row_mask), 1.0,
                 la::multiply(dy, dy, &row_mask));
}

}  // namespace updec::rbf
