#include "rbf/kernels.hpp"

#include <cmath>

#include "util/error.hpp"

namespace updec::rbf {

double Kernel::laplacian(double r) const {
  if (r > 0.0) return d2phi(r) + dphi(r) / r;
  return 2.0 * d2phi(0.0);  // smooth limit in 2-D
}

PolyharmonicSpline::PolyharmonicSpline(int exponent) : m_(exponent) {
  UPDEC_REQUIRE(exponent >= 1 && exponent % 2 == 1,
                "polyharmonic exponent must be odd and positive");
}

std::string PolyharmonicSpline::name() const {
  return "phs" + std::to_string(m_);
}

double PolyharmonicSpline::phi(double r) const { return std::pow(r, m_); }

double PolyharmonicSpline::dphi(double r) const {
  return static_cast<double>(m_) * std::pow(r, m_ - 1);
}

double PolyharmonicSpline::d2phi(double r) const {
  if (m_ == 1) return 0.0;
  return static_cast<double>(m_) * static_cast<double>(m_ - 1) *
         std::pow(r, m_ - 2);
}

GaussianKernel::GaussianKernel(double epsilon) : eps_(epsilon) {
  UPDEC_REQUIRE(epsilon > 0.0, "Gaussian shape parameter must be positive");
}

std::string GaussianKernel::name() const { return "gaussian"; }

double GaussianKernel::phi(double r) const {
  const double er = eps_ * r;
  return std::exp(-er * er);
}

double GaussianKernel::dphi(double r) const {
  return -2.0 * eps_ * eps_ * r * phi(r);
}

double GaussianKernel::d2phi(double r) const {
  const double e2 = eps_ * eps_;
  return (-2.0 * e2 + 4.0 * e2 * e2 * r * r) * phi(r);
}

MultiquadricKernel::MultiquadricKernel(double epsilon) : eps_(epsilon) {
  UPDEC_REQUIRE(epsilon > 0.0, "multiquadric shape parameter must be positive");
}

std::string MultiquadricKernel::name() const { return "multiquadric"; }

double MultiquadricKernel::phi(double r) const {
  const double er = eps_ * r;
  return std::sqrt(1.0 + er * er);
}

double MultiquadricKernel::dphi(double r) const {
  return eps_ * eps_ * r / phi(r);
}

double MultiquadricKernel::d2phi(double r) const {
  const double p = phi(r);
  const double e2 = eps_ * eps_;
  return e2 / p - e2 * e2 * r * r / (p * p * p);
}

InverseMultiquadricKernel::InverseMultiquadricKernel(double epsilon)
    : eps_(epsilon) {
  UPDEC_REQUIRE(epsilon > 0.0,
                "inverse multiquadric shape parameter must be positive");
}

std::string InverseMultiquadricKernel::name() const {
  return "inverse-multiquadric";
}

double InverseMultiquadricKernel::phi(double r) const {
  const double er = eps_ * r;
  return 1.0 / std::sqrt(1.0 + er * er);
}

double InverseMultiquadricKernel::dphi(double r) const {
  const double p = phi(r);
  return -eps_ * eps_ * r * p * p * p;
}

double InverseMultiquadricKernel::d2phi(double r) const {
  const double p = phi(r);
  const double e2 = eps_ * eps_;
  return -e2 * p * p * p + 3.0 * e2 * e2 * r * r * p * p * p * p * p;
}

std::string ThinPlateSpline::name() const { return "thin-plate-spline"; }

double ThinPlateSpline::phi(double r) const {
  return r > 0.0 ? r * r * std::log(r) : 0.0;
}

double ThinPlateSpline::dphi(double r) const {
  return r > 0.0 ? r * (2.0 * std::log(r) + 1.0) : 0.0;
}

double ThinPlateSpline::d2phi(double r) const {
  UPDEC_REQUIRE(r > 0.0, "thin-plate spline second derivative diverges at 0");
  return 2.0 * std::log(r) + 3.0;
}

double ThinPlateSpline::laplacian(double r) const {
  UPDEC_REQUIRE(r > 0.0, "thin-plate spline Laplacian diverges at 0");
  return 4.0 * std::log(r) + 4.0;
}

std::unique_ptr<Kernel> make_default_kernel() {
  return std::make_unique<PolyharmonicSpline>(3);
}

}  // namespace updec::rbf
