#pragma once
/// \file optimizer.hpp
/// First-order optimisers. The paper runs Adam for all three strategies
/// (section 3) -- for DAL and DP it doubles as a robustifier against the
/// noisy boundary gradients caused by the Runge phenomenon.

#include <cstddef>
#include <iosfwd>
#include <memory>

#include "la/dense.hpp"
#include "optim/schedule.hpp"

namespace updec::optim {

/// In-place parameter updater. Stateful (momentum buffers etc.).
class Optimizer {
 public:
  virtual ~Optimizer() = default;

  /// Apply one update: params -= f(gradient). `iteration` indexes into the
  /// learning-rate schedule.
  virtual void step(la::Vector& params, const la::Vector& gradient,
                    std::size_t iteration) = 0;

  /// Reset internal state (momentum buffers, step counters).
  virtual void reset() = 0;

  /// Serialise internal state (momentum buffers, step counter) so a
  /// checkpointed optimisation resumes bit-exactly. Values are written in
  /// hexfloat; the default implementations cover stateless optimisers.
  virtual void save_state(std::ostream& os) const;

  /// Restore state written by save_state(). Returns false on a malformed
  /// stream (the optimiser is then reset()).
  virtual bool load_state(std::istream& is);
};

/// Adam (Kingma & Ba) with bias correction.
class Adam final : public Optimizer {
 public:
  struct Options {
    double beta1 = 0.9;
    double beta2 = 0.999;
    double epsilon = 1e-8;
  };

  explicit Adam(std::shared_ptr<const LrSchedule> schedule)
      : Adam(std::move(schedule), Options()) {}
  Adam(std::shared_ptr<const LrSchedule> schedule, Options options);

  void step(la::Vector& params, const la::Vector& gradient,
            std::size_t iteration) override;
  void reset() override;
  void save_state(std::ostream& os) const override;
  bool load_state(std::istream& is) override;

 private:
  std::shared_ptr<const LrSchedule> schedule_;
  Options options_;
  la::Vector m_, v_;
  std::size_t t_ = 0;
};

/// SGD with optional classical momentum.
class Sgd final : public Optimizer {
 public:
  Sgd(std::shared_ptr<const LrSchedule> schedule, double momentum = 0.0);

  void step(la::Vector& params, const la::Vector& gradient,
            std::size_t iteration) override;
  void reset() override;
  void save_state(std::ostream& os) const override;
  bool load_state(std::istream& is) override;

 private:
  std::shared_ptr<const LrSchedule> schedule_;
  double momentum_;
  la::Vector velocity_;
};

/// Clip the gradient to a maximum Euclidean norm (in place); returns the
/// original norm.
double clip_by_norm(la::Vector& gradient, double max_norm);

}  // namespace updec::optim
