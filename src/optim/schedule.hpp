#pragma once
/// \file schedule.hpp
/// Learning-rate schedules. The paper uses one schedule everywhere
/// (section 3): divide the initial rate by 10 after 50% of the iterations
/// and again at 75% -- provided here as PaperSchedule.

#include <cstddef>
#include <memory>

namespace updec::optim {

/// Learning rate as a function of the iteration index.
class LrSchedule {
 public:
  virtual ~LrSchedule() = default;
  [[nodiscard]] virtual double rate(std::size_t iteration) const = 0;
};

/// Constant rate.
class ConstantSchedule final : public LrSchedule {
 public:
  explicit ConstantSchedule(double rate) : rate_(rate) {}
  [[nodiscard]] double rate(std::size_t) const override { return rate_; }

 private:
  double rate_;
};

/// The paper's piecewise-constant schedule: lr0, lr0/10 from 50% of the
/// run, lr0/100 from 75%.
class PaperSchedule final : public LrSchedule {
 public:
  PaperSchedule(double initial_rate, std::size_t total_iterations)
      : initial_(initial_rate), total_(total_iterations) {}

  [[nodiscard]] double rate(std::size_t iteration) const override {
    if (total_ == 0) return initial_;
    const double progress =
        static_cast<double>(iteration) / static_cast<double>(total_);
    if (progress >= 0.75) return initial_ * 0.01;
    if (progress >= 0.50) return initial_ * 0.1;
    return initial_;
  }

 private:
  double initial_;
  std::size_t total_;
};

/// Exponential decay: lr0 * decay^(iteration / period).
class ExponentialSchedule final : public LrSchedule {
 public:
  ExponentialSchedule(double initial_rate, double decay, std::size_t period)
      : initial_(initial_rate), decay_(decay), period_(period) {}

  [[nodiscard]] double rate(std::size_t iteration) const override;

 private:
  double initial_;
  double decay_;
  std::size_t period_;
};

}  // namespace updec::optim
