#include "optim/optimizer.hpp"

#include <cmath>
#include <cstdlib>
#include <ios>
#include <istream>
#include <ostream>
#include <string>

#include "la/blas.hpp"
#include "util/error.hpp"

namespace updec::optim {

namespace {

/// Hexfloat round-trips doubles exactly, which checkpoint/resume needs for
/// bit-identical optimisation trajectories.
void write_vector(std::ostream& os, const la::Vector& v) {
  os << v.size();
  os << std::hexfloat;
  for (const double x : v) os << ' ' << x;
  os << std::defaultfloat << '\n';
}

/// operator>> cannot parse hexfloat back (the num_get grammar stops at the
/// 'x'), so read a token and hand it to strtod, which can.
bool read_double(std::istream& is, double& out) {
  std::string token;
  if (!(is >> token)) return false;
  char* end = nullptr;
  out = std::strtod(token.c_str(), &end);
  return end == token.c_str() + token.size() && !token.empty();
}

bool read_vector(std::istream& is, la::Vector& v) {
  std::size_t n = 0;
  if (!(is >> n)) return false;
  v.resize(n);
  for (std::size_t i = 0; i < n; ++i)
    if (!read_double(is, v[i])) return false;
  return true;
}

}  // namespace

void Optimizer::save_state(std::ostream&) const {}

bool Optimizer::load_state(std::istream&) { return true; }

double ExponentialSchedule::rate(std::size_t iteration) const {
  return initial_ *
         std::pow(decay_, static_cast<double>(iteration) /
                              static_cast<double>(period_));
}

Adam::Adam(std::shared_ptr<const LrSchedule> schedule, Options options)
    : schedule_(std::move(schedule)), options_(options) {
  UPDEC_REQUIRE(schedule_ != nullptr, "Adam needs a schedule");
}

void Adam::step(la::Vector& params, const la::Vector& gradient,
                std::size_t iteration) {
  UPDEC_REQUIRE(params.size() == gradient.size(),
                "parameter/gradient size mismatch");
  if (m_.size() != params.size()) {
    m_ = la::Vector(params.size(), 0.0);
    v_ = la::Vector(params.size(), 0.0);
    t_ = 0;
  }
  ++t_;
  const double lr = schedule_->rate(iteration);
  const double b1 = options_.beta1, b2 = options_.beta2;
  const double bc1 = 1.0 - std::pow(b1, static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(b2, static_cast<double>(t_));
  for (std::size_t i = 0; i < params.size(); ++i) {
    m_[i] = b1 * m_[i] + (1.0 - b1) * gradient[i];
    v_[i] = b2 * v_[i] + (1.0 - b2) * gradient[i] * gradient[i];
    const double mhat = m_[i] / bc1;
    const double vhat = v_[i] / bc2;
    params[i] -= lr * mhat / (std::sqrt(vhat) + options_.epsilon);
  }
}

void Adam::reset() {
  m_ = la::Vector();
  v_ = la::Vector();
  t_ = 0;
}

void Adam::save_state(std::ostream& os) const {
  os << "adam " << t_ << '\n';
  write_vector(os, m_);
  write_vector(os, v_);
}

bool Adam::load_state(std::istream& is) {
  std::string tag;
  if (!(is >> tag) || tag != "adam" || !(is >> t_) ||
      !read_vector(is, m_) || !read_vector(is, v_)) {
    reset();
    return false;
  }
  return true;
}

Sgd::Sgd(std::shared_ptr<const LrSchedule> schedule, double momentum)
    : schedule_(std::move(schedule)), momentum_(momentum) {
  UPDEC_REQUIRE(schedule_ != nullptr, "SGD needs a schedule");
}

void Sgd::step(la::Vector& params, const la::Vector& gradient,
               std::size_t iteration) {
  UPDEC_REQUIRE(params.size() == gradient.size(),
                "parameter/gradient size mismatch");
  const double lr = schedule_->rate(iteration);
  if (momentum_ == 0.0) {
    la::axpy(-lr, gradient, params);
    return;
  }
  if (velocity_.size() != params.size())
    velocity_ = la::Vector(params.size(), 0.0);
  for (std::size_t i = 0; i < params.size(); ++i) {
    velocity_[i] = momentum_ * velocity_[i] - lr * gradient[i];
    params[i] += velocity_[i];
  }
}

void Sgd::reset() { velocity_ = la::Vector(); }

void Sgd::save_state(std::ostream& os) const {
  os << "sgd\n";
  write_vector(os, velocity_);
}

bool Sgd::load_state(std::istream& is) {
  std::string tag;
  if (!(is >> tag) || tag != "sgd" || !read_vector(is, velocity_)) {
    reset();
    return false;
  }
  return true;
}

double clip_by_norm(la::Vector& gradient, double max_norm) {
  UPDEC_REQUIRE(max_norm > 0.0, "max_norm must be positive");
  const double norm = la::nrm2(gradient);
  if (norm > max_norm) la::scal(max_norm / norm, gradient);
  return norm;
}

}  // namespace updec::optim
