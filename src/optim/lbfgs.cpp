#include "optim/lbfgs.hpp"

#include <cmath>
#include <deque>

#include "la/blas.hpp"
#include "util/error.hpp"

namespace updec::optim {

LbfgsResult lbfgs_minimize(const ObjectiveFn& objective, la::Vector x0,
                           const LbfgsOptions& options) {
  UPDEC_REQUIRE(options.history > 0, "L-BFGS history must be positive");
  const std::size_t n = x0.size();
  LbfgsResult result;
  result.x = std::move(x0);

  la::Vector g(n);
  double f = objective(result.x, g);
  result.history.push_back(f);

  std::deque<la::Vector> s_hist, y_hist;
  std::deque<double> rho_hist;

  for (std::size_t iter = 0; iter < options.max_iterations; ++iter) {
    if (la::nrm_inf(g) < options.gradient_tol) {
      result.converged = true;
      break;
    }
    // Two-loop recursion for the search direction d = -H g.
    la::Vector q = g;
    std::vector<double> alpha(s_hist.size());
    for (std::size_t k = s_hist.size(); k-- > 0;) {
      alpha[k] = rho_hist[k] * la::dot(s_hist[k], q);
      la::axpy(-alpha[k], y_hist[k], q);
    }
    if (!y_hist.empty()) {
      const double gamma = la::dot(s_hist.back(), y_hist.back()) /
                           la::dot(y_hist.back(), y_hist.back());
      la::scal(gamma, q);
    }
    for (std::size_t k = 0; k < s_hist.size(); ++k) {
      const double beta = rho_hist[k] * la::dot(y_hist[k], q);
      la::axpy(alpha[k] - beta, s_hist[k], q);
    }
    la::Vector d = (-1.0) * q;

    // Guard against ascent directions (can happen with noisy gradients).
    double gd = la::dot(g, d);
    if (gd >= 0.0) {
      d = (-1.0) * g;
      gd = -la::dot(g, g);
    }

    // Armijo backtracking line search.
    double step = options.initial_step;
    la::Vector x_new(n);
    la::Vector g_new(n);
    double f_new = f;
    bool accepted = false;
    for (std::size_t bt = 0; bt < options.max_backtracks; ++bt) {
      x_new = result.x;
      la::axpy(step, d, x_new);
      f_new = objective(x_new, g_new);
      if (f_new <= f + options.armijo_c1 * step * gd) {
        accepted = true;
        break;
      }
      step *= options.backtrack_factor;
    }
    if (!accepted) break;  // no acceptable step: stationary to tolerance

    // Curvature update. Armijo alone does not guarantee s.y > 0; when the
    // curvature condition fails, drop the history instead of keeping a
    // stale inverse-Hessian model (which freezes progress in curved
    // valleys) -- the next direction falls back to scaled steepest descent.
    la::Vector s = x_new - result.x;
    la::Vector y = g_new - g;
    const double sy = la::dot(s, y);
    if (sy > 1e-10 * la::nrm2(s) * la::nrm2(y)) {
      s_hist.push_back(std::move(s));
      y_hist.push_back(std::move(y));
      rho_hist.push_back(1.0 / sy);
      if (s_hist.size() > options.history) {
        s_hist.pop_front();
        y_hist.pop_front();
        rho_hist.pop_front();
      }
    } else {
      s_hist.clear();
      y_hist.clear();
      rho_hist.clear();
    }
    result.x = std::move(x_new);
    f = f_new;
    g = g_new;
    result.history.push_back(f);
    ++result.iterations;
  }
  result.value = f;
  if (la::nrm_inf(g) < options.gradient_tol) result.converged = true;
  return result;
}

}  // namespace updec::optim
