#pragma once
/// \file lbfgs.hpp
/// Limited-memory BFGS with Armijo backtracking. Not used by the paper's
/// headline experiments (they standardise on Adam) but provided as the
/// natural extension for the smooth Laplace control landscape, and used by
/// the optimiser ablation bench.

#include <functional>

#include "la/dense.hpp"

namespace updec::optim {

/// Objective: returns f(x) and fills `gradient` (resized by the caller).
using ObjectiveFn =
    std::function<double(const la::Vector& x, la::Vector& gradient)>;

struct LbfgsOptions {
  std::size_t history = 10;        ///< stored (s, y) pairs
  std::size_t max_iterations = 100;
  double gradient_tol = 1e-10;     ///< stop when ||g||_inf below
  double initial_step = 1.0;
  double armijo_c1 = 1e-4;
  double backtrack_factor = 0.5;
  std::size_t max_backtracks = 30;
};

struct LbfgsResult {
  la::Vector x;
  double value = 0.0;
  std::size_t iterations = 0;
  bool converged = false;
  std::vector<double> history;  ///< objective per iteration
};

/// Minimise `objective` starting from x0.
LbfgsResult lbfgs_minimize(const ObjectiveFn& objective, la::Vector x0,
                           const LbfgsOptions& options = {});

}  // namespace updec::optim
