#include "pointcloud/generators.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "util/rng.hpp"

namespace updec::pc {

double van_der_corput(std::uint64_t index, std::uint64_t base) {
  double result = 0.0;
  double f = 1.0 / static_cast<double>(base);
  while (index > 0) {
    result += f * static_cast<double>(index % base);
    index /= base;
    f /= static_cast<double>(base);
  }
  return result;
}

Vec2 halton2(std::uint64_t index) {
  return {van_der_corput(index, 2), van_der_corput(index, 3)};
}

PointCloud unit_square_grid(std::size_t nx, std::size_t ny) {
  UPDEC_REQUIRE(nx >= 2 && ny >= 2, "grid needs at least 3x3 nodes");
  std::vector<Node> nodes;
  nodes.reserve((nx + 1) * (ny + 1));
  const double hx = 1.0 / static_cast<double>(nx);
  const double hy = 1.0 / static_cast<double>(ny);
  for (std::size_t j = 0; j <= ny; ++j) {
    for (std::size_t i = 0; i <= nx; ++i) {
      Node n;
      n.pos = {static_cast<double>(i) * hx, static_cast<double>(j) * hy};
      if (j == 0) {  // bottom (owns its corners)
        n.kind = BoundaryKind::kDirichlet;
        n.normal = {0.0, -1.0};
        n.tag = tags::kBottom;
      } else if (j == ny) {  // top (owns its corners) -- the controlled wall
        n.kind = BoundaryKind::kDirichlet;
        n.normal = {0.0, 1.0};
        n.tag = tags::kTop;
      } else if (i == 0) {
        n.kind = BoundaryKind::kDirichlet;
        n.normal = {-1.0, 0.0};
        n.tag = tags::kLeft;
      } else if (i == nx) {
        n.kind = BoundaryKind::kDirichlet;
        n.normal = {1.0, 0.0};
        n.tag = tags::kRight;
      }
      nodes.push_back(n);
    }
  }
  return PointCloud(std::move(nodes));
}

PointCloud unit_square_scattered(std::size_t n_interior,
                                 std::size_t n_per_side, std::uint64_t seed) {
  UPDEC_REQUIRE(n_per_side >= 2, "need at least 2 nodes per side");
  std::vector<Node> nodes;
  nodes.reserve(n_interior + 4 * n_per_side);
  const double h = 1.0 / static_cast<double>(n_per_side);

  // Perimeter walk: each side contributes n_per_side nodes including exactly
  // one corner, so corners appear once.
  const auto side = [&](Vec2 start, Vec2 dir, Vec2 normal, int tag) {
    for (std::size_t i = 0; i < n_per_side; ++i) {
      Node n;
      n.pos = start + (static_cast<double>(i) * h) * dir;
      n.kind = BoundaryKind::kDirichlet;
      n.normal = normal;
      n.tag = tag;
      nodes.push_back(n);
    }
  };
  side({0, 0}, {1, 0}, {0, -1}, tags::kBottom);
  side({1, 0}, {0, 1}, {1, 0}, tags::kRight);
  side({1, 1}, {-1, 0}, {0, 1}, tags::kTop);
  side({0, 1}, {0, -1}, {-1, 0}, tags::kLeft);

  // Halton interior nodes, offset by the seed and kept a safe distance off
  // the boundary so collocation rows stay distinct.
  const double margin = 0.3 * h;
  std::uint64_t index = seed + 1;
  std::size_t placed = 0;
  while (placed < n_interior) {
    const Vec2 p = halton2(index++);
    if (p.x < margin || p.x > 1.0 - margin || p.y < margin ||
        p.y > 1.0 - margin)
      continue;
    Node n;
    n.pos = p;
    nodes.push_back(n);
    ++placed;
  }
  return PointCloud(std::move(nodes));
}

namespace {

/// Map t in [0,1] to [0,1] clustering towards both ends with strength g.
double wall_grading(double t, double g) {
  return t - g / (2.0 * std::numbers::pi) * std::sin(2.0 * std::numbers::pi * t);
}

}  // namespace

PointCloud channel_cloud(const ChannelSpec& spec) {
  UPDEC_REQUIRE(spec.target_nodes >= 60, "channel cloud needs >= 60 nodes");
  UPDEC_REQUIRE(spec.grading >= 0.0 && spec.grading < 1.0,
                "grading must be in [0, 1)");
  UPDEC_REQUIRE(spec.blow_start < spec.blow_end && spec.blow_end < spec.lx,
                "bad blowing patch");
  UPDEC_REQUIRE(spec.suction_start < spec.suction_end &&
                    spec.suction_end < spec.lx,
                "bad suction patch");

  // Choose a characteristic spacing h so that interior + boundary node
  // counts hit the target: N ~ lx*ly/h^2 + 2(lx+ly)/h.
  const double area = spec.lx * spec.ly;
  const double perim = 2.0 * (spec.lx + spec.ly);
  const double n = static_cast<double>(spec.target_nodes);
  // Solve area/h^2 + perim/h = n for 1/h (positive root).
  const double inv_h = (-perim + std::sqrt(perim * perim + 4.0 * area * n)) /
                       (2.0 * area);
  const double h = 1.0 / inv_h;

  std::vector<Node> nodes;
  nodes.reserve(spec.target_nodes + 16);

  // ---- boundary segments ----
  const auto n_along = [&](double len) {
    return std::max<std::size_t>(2, static_cast<std::size_t>(std::round(len / h)));
  };

  // Bottom and top walls own the corners; inlet/outlet nodes are strictly
  // interior in y.
  const std::size_t n_wall = n_along(spec.lx) + 1;
  for (std::size_t i = 0; i < n_wall; ++i) {
    const double x =
        spec.lx * static_cast<double>(i) / static_cast<double>(n_wall - 1);
    Node bottom;
    bottom.pos = {x, 0.0};
    bottom.kind = BoundaryKind::kDirichlet;
    bottom.normal = {0.0, -1.0};
    bottom.tag = (x >= spec.blow_start && x <= spec.blow_end) ? tags::kBlowing
                                                              : tags::kWall;
    nodes.push_back(bottom);
    Node top;
    top.pos = {x, spec.ly};
    top.kind = BoundaryKind::kDirichlet;
    top.normal = {0.0, 1.0};
    top.tag = (x >= spec.suction_start && x <= spec.suction_end)
                  ? tags::kSuction
                  : tags::kWall;
    nodes.push_back(top);
  }

  const std::size_t n_vert = n_along(spec.ly);
  for (std::size_t i = 1; i < n_vert; ++i) {
    const double y =
        spec.ly * static_cast<double>(i) / static_cast<double>(n_vert);
    Node inlet;
    inlet.pos = {0.0, y};
    inlet.kind = BoundaryKind::kDirichlet;
    inlet.normal = {-1.0, 0.0};
    inlet.tag = tags::kInlet;
    nodes.push_back(inlet);
    Node outlet;
    outlet.pos = {spec.lx, y};
    outlet.kind = BoundaryKind::kNeumann;  // du/dn = 0 at the outflow
    outlet.normal = {1.0, 0.0};
    outlet.tag = tags::kOutlet;
    nodes.push_back(outlet);
  }

  const std::size_t n_boundary = nodes.size();
  UPDEC_REQUIRE(n_boundary < spec.target_nodes,
                "target_nodes too small for the boundary discretisation");

  // ---- graded interior (GMSH-substitute refinement near the walls) ----
  updec::Rng rng(spec.seed);
  const double margin = 0.7 * h;
  std::uint64_t index = spec.seed * 7919 + 1;
  std::size_t attempts = 0;
  const std::size_t max_attempts = 400 * spec.target_nodes;
  while (nodes.size() < spec.target_nodes && attempts++ < max_attempts) {
    Vec2 p = halton2(index++);
    p.x *= spec.lx;
    p.y = spec.ly * wall_grading(p.y, spec.grading);
    if (p.x < margin || p.x > spec.lx - margin || p.y < margin ||
        p.y > spec.ly - margin)
      continue;
    // Local acceptance radius shrinks near the walls with the grading.
    const double wall_dist = std::min(p.y, spec.ly - p.y);
    const double local =
        h * (1.0 - spec.grading *
                       std::exp(-wall_dist / (0.15 * spec.ly)));
    bool ok = true;
    for (const Node& existing : nodes) {
      if (std::abs(existing.pos.x - p.x) > local) continue;
      if (distance(existing.pos, p) < 0.55 * local) {
        ok = false;
        break;
      }
    }
    if (!ok) continue;
    Node node;
    node.pos = p;
    nodes.push_back(node);
  }
  return PointCloud(std::move(nodes));
}

}  // namespace updec::pc
