#pragma once
/// \file generators.hpp
/// Point-cloud generators for the paper's two experiment domains, plus the
/// low-discrepancy machinery behind them. The channel generator is our GMSH
/// substitute (DESIGN.md section 1): scattered interior nodes with graded
/// refinement towards the walls, boundary nodes laid out segment by segment
/// with tags for the inlet, outlet, walls and the blowing/suction patches.

#include <cstdint>

#include "pointcloud/cloud.hpp"

namespace updec::pc {

/// Boundary segment tags shared by generators, PDE solvers and control
/// problems.
namespace tags {
inline constexpr int kInterior = 0;
// Unit square (Laplace problem, section 3.1).
inline constexpr int kBottom = 1;
inline constexpr int kRight = 2;
inline constexpr int kTop = 3;  ///< the controlled wall u(x,1) = c(x)
inline constexpr int kLeft = 4;
// Channel (Navier-Stokes problem, section 3.2 / fig. 4a).
inline constexpr int kInlet = 5;     ///< Gamma_i: controlled inflow
inline constexpr int kOutlet = 6;    ///< Gamma_o: target outflow
inline constexpr int kWall = 7;      ///< no-slip walls
inline constexpr int kBlowing = 8;   ///< Gamma_b on the bottom wall
inline constexpr int kSuction = 9;   ///< Gamma_s on the top wall
}  // namespace tags

/// Element `index` of the 1-D van der Corput sequence in base `base`.
double van_der_corput(std::uint64_t index, std::uint64_t base);

/// 2-D Halton point (bases 2 and 3), the classic low-discrepancy sequence
/// for quasi-random interior node placement.
Vec2 halton2(std::uint64_t index);

/// Regular (nx+1)x(ny+1) grid on the unit square; all boundary nodes
/// Dirichlet with per-side tags (corners attach to the horizontal sides).
/// This is the layout used for DAL/DP on the Laplace problem.
PointCloud unit_square_grid(std::size_t nx, std::size_t ny);

/// Scattered unit-square cloud: `n_interior` Halton nodes inside plus
/// `n_per_side` uniformly spaced Dirichlet nodes per side (used for PINN
/// collocation points and for conditioning experiments).
PointCloud unit_square_scattered(std::size_t n_interior,
                                 std::size_t n_per_side,
                                 std::uint64_t seed = 0);

/// Parameters of the Navier-Stokes channel of fig. 4a.
struct ChannelSpec {
  double lx = 1.5;  ///< channel length (outflow measured at x = Lx)
  double ly = 1.0;  ///< channel height
  /// Blowing patch Gamma_b on the bottom wall and suction patch Gamma_s on
  /// the top wall (the fig. 1 cross-flow). Placed in the downstream half so
  /// the disturbance reaches the outlet before viscous recovery flattens it.
  double blow_start = 0.95, blow_end = 1.2;
  double suction_start = 0.95, suction_end = 1.2;
  /// Target number of nodes overall (the paper extracted 1385 from GMSH).
  std::size_t target_nodes = 1385;
  /// Wall-grading strength: 0 = uniform, 1 = strong refinement near walls.
  /// Gradings beyond ~0.5 need larger RBF-FD stencils (>= 17) to keep the
  /// discrete operators stable.
  double grading = 0.3;
  std::uint64_t seed = 42;
};

/// GMSH-substitute channel cloud. Interior nodes are graded towards the
/// walls; boundary nodes are spaced uniformly along each segment. Velocity
/// boundary kinds: Dirichlet at inlet/walls/patches, Neumann at the outlet.
PointCloud channel_cloud(const ChannelSpec& spec);

}  // namespace updec::pc
