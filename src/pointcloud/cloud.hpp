#pragma once
/// \file cloud.hpp
/// Scattered point clouds with boundary metadata.
///
/// RBF collocation needs no mesh, only nodes with boundary-condition kinds
/// and outward normals. Following the paper (section 2.1), nodes are kept in
/// a canonical order -- internal first, then Dirichlet, then Neumann, then
/// Robin -- so collocation matrices assemble into contiguous blocks and the
/// Runge-phenomenon-prone boundary rows are easy to locate.

#include <cstddef>
#include <string>
#include <vector>

#include "util/error.hpp"

namespace updec::pc {

/// 2-D point / vector.
struct Vec2 {
  double x = 0.0;
  double y = 0.0;
};

inline Vec2 operator-(const Vec2& a, const Vec2& b) {
  return {a.x - b.x, a.y - b.y};
}
inline Vec2 operator+(const Vec2& a, const Vec2& b) {
  return {a.x + b.x, a.y + b.y};
}
inline Vec2 operator*(double s, const Vec2& a) { return {s * a.x, s * a.y}; }
inline double dot(const Vec2& a, const Vec2& b) {
  return a.x * b.x + a.y * b.y;
}
double norm(const Vec2& a);
double distance(const Vec2& a, const Vec2& b);

/// Boundary-condition kind of a node (eq. (1) of the paper).
enum class BoundaryKind : std::uint8_t {
  kInternal = 0,
  kDirichlet = 1,
  kNeumann = 2,
  kRobin = 3,
};

const char* to_string(BoundaryKind kind);

/// One collocation node.
struct Node {
  Vec2 pos;
  BoundaryKind kind = BoundaryKind::kInternal;
  Vec2 normal;  ///< outward unit normal; zero for internal nodes
  int tag = 0;  ///< user segment tag (inlet, outlet, wall, ...)
};

/// A cloud of nodes in canonical (internal, Dirichlet, Neumann, Robin) order.
class PointCloud {
 public:
  PointCloud() = default;

  /// Build from nodes; reorders into the canonical ordering (stable within
  /// each class, so generator-side ordering along boundaries is preserved).
  explicit PointCloud(std::vector<Node> nodes);

  [[nodiscard]] std::size_t size() const { return nodes_.size(); }
  [[nodiscard]] const Node& node(std::size_t i) const {
    UPDEC_ASSERT(i < nodes_.size());
    return nodes_[i];
  }
  [[nodiscard]] const std::vector<Node>& nodes() const { return nodes_; }

  /// Counts per class (contiguous blocks in this order).
  [[nodiscard]] std::size_t num_internal() const { return counts_[0]; }
  [[nodiscard]] std::size_t num_dirichlet() const { return counts_[1]; }
  [[nodiscard]] std::size_t num_neumann() const { return counts_[2]; }
  [[nodiscard]] std::size_t num_robin() const { return counts_[3]; }
  [[nodiscard]] std::size_t num_boundary() const {
    return counts_[1] + counts_[2] + counts_[3];
  }

  /// First index of each class block.
  [[nodiscard]] std::size_t begin_of(BoundaryKind kind) const;
  [[nodiscard]] std::size_t end_of(BoundaryKind kind) const;

  /// All node indices carrying a given tag (in canonical order).
  [[nodiscard]] std::vector<std::size_t> indices_with_tag(int tag) const;

  /// All node indices of a given boundary kind.
  [[nodiscard]] std::vector<std::size_t> indices_of(BoundaryKind kind) const;

  /// New cloud with `extra` nodes merged in, canonical order preserved:
  /// within each boundary class this cloud's nodes keep their relative
  /// order and the extra nodes of that class follow. If `old_index` is
  /// non-null it receives, for each node of the NEW cloud, its index in
  /// *this (-1 for a freshly inserted node) -- the map the incremental
  /// RBF-FD stencil rebuild consumes.
  [[nodiscard]] PointCloud inserted(
      const std::vector<Node>& extra,
      std::vector<std::ptrdiff_t>* old_index = nullptr) const;

  /// New cloud with the nodes at `victims` (indices into *this) dropped;
  /// `old_index` as in inserted(). Duplicate victim indices are tolerated.
  [[nodiscard]] PointCloud removed(
      const std::vector<std::size_t>& victims,
      std::vector<std::ptrdiff_t>* old_index = nullptr) const;

  /// Minimum pairwise node distance (separation; brute force, O(n^2) --
  /// diagnostics only).
  [[nodiscard]] double min_spacing() const;

  /// Mean nearest-neighbour distance (characteristic spacing h).
  /// Routed through a KD-tree, O(n log n) -- cheap enough for the adaptive
  /// refinement loop to call every cycle.
  [[nodiscard]] double mean_spacing() const;

  /// Human-readable inventory (Fig. 4a-style setup dump).
  [[nodiscard]] std::string summary() const;

 private:
  std::vector<Node> nodes_;
  std::size_t counts_[4] = {0, 0, 0, 0};
};

}  // namespace updec::pc
