#include "pointcloud/cloud.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <map>
#include <sstream>

#include "pointcloud/kdtree.hpp"

namespace updec::pc {

double norm(const Vec2& a) { return std::sqrt(a.x * a.x + a.y * a.y); }

double distance(const Vec2& a, const Vec2& b) { return norm(a - b); }

const char* to_string(BoundaryKind kind) {
  switch (kind) {
    case BoundaryKind::kInternal: return "internal";
    case BoundaryKind::kDirichlet: return "dirichlet";
    case BoundaryKind::kNeumann: return "neumann";
    case BoundaryKind::kRobin: return "robin";
  }
  return "?";
}

PointCloud::PointCloud(std::vector<Node> nodes) : nodes_(std::move(nodes)) {
  std::stable_sort(nodes_.begin(), nodes_.end(),
                   [](const Node& a, const Node& b) {
                     return static_cast<int>(a.kind) < static_cast<int>(b.kind);
                   });
  for (const Node& n : nodes_) ++counts_[static_cast<int>(n.kind)];
}

std::size_t PointCloud::begin_of(BoundaryKind kind) const {
  std::size_t start = 0;
  for (int k = 0; k < static_cast<int>(kind); ++k) start += counts_[k];
  return start;
}

std::size_t PointCloud::end_of(BoundaryKind kind) const {
  return begin_of(kind) + counts_[static_cast<int>(kind)];
}

std::vector<std::size_t> PointCloud::indices_with_tag(int tag) const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < nodes_.size(); ++i)
    if (nodes_[i].tag == tag) out.push_back(i);
  return out;
}

std::vector<std::size_t> PointCloud::indices_of(BoundaryKind kind) const {
  std::vector<std::size_t> out;
  out.reserve(counts_[static_cast<int>(kind)]);
  for (std::size_t i = begin_of(kind); i < end_of(kind); ++i) out.push_back(i);
  return out;
}

double PointCloud::min_spacing() const {
  double best = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < nodes_.size(); ++i)
    for (std::size_t j = i + 1; j < nodes_.size(); ++j)
      best = std::min(best, distance(nodes_[i].pos, nodes_[j].pos));
  return best;
}

double PointCloud::mean_spacing() const {
  if (nodes_.size() < 2) return 0.0;
  // k = 2 returns the query node itself plus its true nearest neighbour
  // (ties by index still yield the same distance, so this matches the old
  // brute-force scan exactly while dropping the cost from O(n^2) to
  // O(n log n)).
  const KdTree tree(*this);
  double total = 0.0;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const std::vector<std::size_t> nn = tree.k_nearest(nodes_[i].pos, 2);
    total += distance(nodes_[i].pos, nodes_[nn.back()].pos);
  }
  return total / static_cast<double>(nodes_.size());
}

PointCloud PointCloud::inserted(const std::vector<Node>& extra,
                                std::vector<std::ptrdiff_t>* old_index) const {
  std::vector<Node> merged;
  merged.reserve(nodes_.size() + extra.size());
  std::vector<std::ptrdiff_t> map;
  map.reserve(nodes_.size() + extra.size());
  // Emit class by class so `merged` is already canonically ordered; the
  // constructor's stable sort then preserves the mapping verbatim.
  for (int k = 0; k < 4; ++k) {
    const auto kind = static_cast<BoundaryKind>(k);
    for (std::size_t i = begin_of(kind); i < end_of(kind); ++i) {
      merged.push_back(nodes_[i]);
      map.push_back(static_cast<std::ptrdiff_t>(i));
    }
    for (const Node& n : extra)
      if (n.kind == kind) {
        merged.push_back(n);
        map.push_back(-1);
      }
  }
  if (old_index) *old_index = std::move(map);
  return PointCloud(std::move(merged));
}

PointCloud PointCloud::removed(const std::vector<std::size_t>& victims,
                               std::vector<std::ptrdiff_t>* old_index) const {
  std::vector<std::uint8_t> drop(nodes_.size(), 0);
  for (const std::size_t v : victims) {
    UPDEC_REQUIRE(v < nodes_.size(), "PointCloud::removed: index out of range");
    drop[v] = 1;
  }
  std::vector<Node> kept;
  std::vector<std::ptrdiff_t> map;
  kept.reserve(nodes_.size());
  map.reserve(nodes_.size());
  for (std::size_t i = 0; i < nodes_.size(); ++i)
    if (!drop[i]) {
      kept.push_back(nodes_[i]);
      map.push_back(static_cast<std::ptrdiff_t>(i));
    }
  if (old_index) *old_index = std::move(map);
  return PointCloud(std::move(kept));
}

std::string PointCloud::summary() const {
  std::ostringstream os;
  os << "PointCloud: " << size() << " nodes (" << num_internal()
     << " internal, " << num_dirichlet() << " Dirichlet, " << num_neumann()
     << " Neumann, " << num_robin() << " Robin)";
  std::map<int, std::size_t> per_tag;
  for (const Node& n : nodes_)
    if (n.kind != BoundaryKind::kInternal) ++per_tag[n.tag];
  if (!per_tag.empty()) {
    os << "; boundary tags:";
    for (const auto& [tag, count] : per_tag)
      os << " [" << tag << "]=" << count;
  }
  return os.str();
}

}  // namespace updec::pc
