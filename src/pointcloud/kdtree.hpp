#pragma once
/// \file kdtree.hpp
/// 2-D k-d tree for nearest-neighbour queries. RBF-FD builds one stencil
/// per node from its k nearest neighbours; brute force is O(n^2 k) while
/// the tree brings stencil assembly to O(n k log n).

#include <cstddef>
#include <vector>

#include "pointcloud/cloud.hpp"

namespace updec::pc {

/// Static 2-D k-d tree over a fixed set of points.
class KdTree {
 public:
  KdTree() = default;

  /// Build over a point set (copied; median-split, O(n log n)).
  explicit KdTree(std::vector<Vec2> points);

  /// Convenience: build over the node positions of a cloud.
  explicit KdTree(const PointCloud& cloud);

  /// Indices of the k nearest points to `query` (ties broken by index),
  /// sorted by increasing distance. k is clamped to size().
  [[nodiscard]] std::vector<std::size_t> k_nearest(const Vec2& query,
                                                   std::size_t k) const;

  /// Index of the single nearest point.
  [[nodiscard]] std::size_t nearest(const Vec2& query) const;

  /// All indices within `radius` of `query` (unsorted).
  [[nodiscard]] std::vector<std::size_t> radius_search(const Vec2& query,
                                                       double radius) const;

  [[nodiscard]] std::size_t size() const { return points_.size(); }

 private:
  struct SplitNode {
    std::size_t point = 0;      // index into points_
    int axis = 0;               // 0 = x, 1 = y
    std::int32_t left = -1;     // children in nodes_
    std::int32_t right = -1;
  };

  std::int32_t build(std::vector<std::size_t>& idx, std::size_t lo,
                     std::size_t hi, int depth);

  std::vector<Vec2> points_;
  std::vector<SplitNode> nodes_;
  std::int32_t root_ = -1;
};

}  // namespace updec::pc
