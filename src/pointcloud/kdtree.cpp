#include "pointcloud/kdtree.hpp"

#include <algorithm>
#include <cmath>
#include <queue>

namespace updec::pc {

namespace {
double coord(const Vec2& p, int axis) { return axis == 0 ? p.x : p.y; }
}  // namespace

KdTree::KdTree(std::vector<Vec2> points) : points_(std::move(points)) {
  if (points_.empty()) return;
  std::vector<std::size_t> idx(points_.size());
  for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = i;
  nodes_.reserve(points_.size());
  root_ = build(idx, 0, idx.size(), 0);
}

KdTree::KdTree(const PointCloud& cloud) {
  std::vector<Vec2> pts;
  pts.reserve(cloud.size());
  for (const Node& n : cloud.nodes()) pts.push_back(n.pos);
  *this = KdTree(std::move(pts));
}

std::int32_t KdTree::build(std::vector<std::size_t>& idx, std::size_t lo,
                           std::size_t hi, int depth) {
  if (lo >= hi) return -1;
  const int axis = depth % 2;
  const std::size_t mid = lo + (hi - lo) / 2;
  std::nth_element(idx.begin() + static_cast<std::ptrdiff_t>(lo),
                   idx.begin() + static_cast<std::ptrdiff_t>(mid),
                   idx.begin() + static_cast<std::ptrdiff_t>(hi),
                   [&](std::size_t a, std::size_t b) {
                     return coord(points_[a], axis) < coord(points_[b], axis);
                   });
  const auto self = static_cast<std::int32_t>(nodes_.size());
  nodes_.push_back({idx[mid], axis, -1, -1});
  const std::int32_t left = build(idx, lo, mid, depth + 1);
  const std::int32_t right = build(idx, mid + 1, hi, depth + 1);
  nodes_[static_cast<std::size_t>(self)].left = left;
  nodes_[static_cast<std::size_t>(self)].right = right;
  return self;
}

std::vector<std::size_t> KdTree::k_nearest(const Vec2& query,
                                           std::size_t k) const {
  UPDEC_REQUIRE(!points_.empty(), "k_nearest on empty tree");
  if (k == 0) return {};  // heap.top() below would be UB on an empty heap
  k = std::min(k, points_.size());
  // Max-heap of (distance^2, index): the root is the current worst keeper.
  using Entry = std::pair<double, std::size_t>;
  std::priority_queue<Entry> heap;

  const auto visit = [&](const auto& self, std::int32_t at) -> void {
    if (at < 0) return;
    const SplitNode& node = nodes_[static_cast<std::size_t>(at)];
    const Vec2& p = points_[node.point];
    const double dx = query.x - p.x, dy = query.y - p.y;
    const double d2 = dx * dx + dy * dy;
    if (heap.size() < k) {
      heap.emplace(d2, node.point);
    } else if (d2 < heap.top().first) {
      heap.pop();
      heap.emplace(d2, node.point);
    }
    const double delta = coord(query, node.axis) - coord(p, node.axis);
    const std::int32_t near = delta <= 0.0 ? node.left : node.right;
    const std::int32_t far = delta <= 0.0 ? node.right : node.left;
    self(self, near);
    if (heap.size() < k || delta * delta < heap.top().first)
      self(self, far);
  };
  visit(visit, root_);

  std::vector<Entry> entries;
  entries.reserve(heap.size());
  while (!heap.empty()) {
    entries.push_back(heap.top());
    heap.pop();
  }
  std::sort(entries.begin(), entries.end());
  std::vector<std::size_t> out;
  out.reserve(entries.size());
  for (const auto& [d2, i] : entries) out.push_back(i);
  return out;
}

std::size_t KdTree::nearest(const Vec2& query) const {
  return k_nearest(query, 1).front();
}

std::vector<std::size_t> KdTree::radius_search(const Vec2& query,
                                               double radius) const {
  std::vector<std::size_t> out;
  const double r2 = radius * radius;
  const auto visit = [&](const auto& self, std::int32_t at) -> void {
    if (at < 0) return;
    const SplitNode& node = nodes_[static_cast<std::size_t>(at)];
    const Vec2& p = points_[node.point];
    const double dx = query.x - p.x, dy = query.y - p.y;
    if (dx * dx + dy * dy <= r2) out.push_back(node.point);
    const double delta = coord(query, node.axis) - coord(p, node.axis);
    const std::int32_t near = delta <= 0.0 ? node.left : node.right;
    const std::int32_t far = delta <= 0.0 ? node.right : node.left;
    self(self, near);
    if (delta * delta <= r2) self(self, far);
  };
  visit(visit, root_);
  return out;
}

}  // namespace updec::pc
