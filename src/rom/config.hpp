#pragma once
/// \file config.hpp
/// \brief Knobs of the reduced-order serving tier (ROADMAP item 1).
///
/// The ROM tier is opt-in: UPDEC_ROM=1 arms it, everything else then has a
/// conservative default. All knobs go through util/env strict whole-string
/// parsing (malformed values warn and keep the default), mirroring the
/// serve-layer cache/retry knobs.

#include <cstddef>

namespace updec::rom {

struct RomConfig {
  /// Route eligible serve DAL jobs through the reduced space (UPDEC_ROM).
  bool enabled = false;
  /// Accept a reduced solve when the dual-weighted residual estimate is at
  /// or below this relative tolerance; escalate to the full sparse path
  /// otherwise (UPDEC_ROM_TOL).
  double tol = 1e-6;
  /// Hard cap on the POD basis rank (UPDEC_ROM_MAX_K). The energy floor in
  /// build_pod_basis governs the effective rank, so this only needs to stay
  /// above the solution manifold's dimension -- for a boundary-control
  /// problem roughly twice the number of control DOFs (direct + adjoint
  /// streams). Too small a cap is the one mis-tuning that defeats the tier:
  /// a basis that CANNOT represent the trajectory escalates every solve.
  std::size_t max_k = 96;
  /// Snapshots required before the first basis build, and harvested
  /// escalations required before an enrichment rebuild
  /// (UPDEC_ROM_MIN_SNAPSHOTS).
  std::size_t min_snapshots = 8;
  /// SnapshotBank byte cap; oldest snapshots of the least-recently-touched
  /// operator fingerprint are evicted past it (UPDEC_ROM_SNAPSHOT_BYTES).
  std::size_t snapshot_bytes = std::size_t{64} << 20;
};

/// Read every knob from the environment over the defaults above.
[[nodiscard]] RomConfig config_from_env();

}  // namespace updec::rom
