#include "rom/laplace_rom.hpp"

#include <cmath>
#include <utility>

#include "la/blas.hpp"
#include "util/error.hpp"

namespace updec::rom {

using pde::LaplaceSolver;

LaplaceFdControlProblem::LaplaceFdControlProblem(
    std::size_t grid_n, const rbf::Kernel& kernel,
    const rbf::RbffdConfig& config, const la::RobustSolveOptions& solver)
    : solver_(grid_n, kernel, config, solver) {}

LaplaceFdControlProblem::LaplaceFdControlProblem(
    pc::PointCloud cloud, const rbf::Kernel& kernel,
    const rbf::RbffdConfig& config, const la::RobustSolveOptions& solver,
    const rbf::RbffdOperators* previous,
    const std::vector<std::ptrdiff_t>* old_index)
    : solver_(std::move(cloud), kernel, config, solver, previous, old_index) {}

double LaplaceFdControlProblem::cost(const la::Vector& control) const {
  return cost_from_flux(solver_.flux_top(solver_.solve(control)));
}

double LaplaceFdControlProblem::cost_from_flux(const la::Vector& flux) const {
  const auto& w = solver_.quadrature_weights();
  const auto& xs = solver_.top_x();
  double j = 0.0;
  for (std::size_t i = 0; i < flux.size(); ++i) {
    const double d = flux[i] - LaplaceSolver::target_flux(xs[i]);
    j += w[i] * d * d;
  }
  return j;
}

namespace {

/// Adjoint RHS shared by both strategies: the continuous adjoint problem
/// has the same operator as the direct one, with top-wall Dirichlet data
/// 2 (du/dy - target) and homogeneous data everywhere else.
la::Vector adjoint_rhs(const pde::LaplaceFdSolver& solver,
                       const la::Vector& flux) {
  la::Vector rhs(solver.cloud().size(), 0.0);
  const auto& top = solver.top_nodes();
  const auto& xs = solver.top_x();
  for (std::size_t i = 0; i < top.size(); ++i)
    rhs[top[i]] = 2.0 * (flux[i] - LaplaceSolver::target_flux(xs[i]));
  return rhs;
}

/// Fold a top-wall adjoint flux into the control gradient (the periodic
/// corners share one DOF, so their contributions sum).
la::Vector gradient_from_lambda_flux(const pde::LaplaceFdSolver& solver,
                                     std::size_t control_size,
                                     const la::Vector& lambda_flux) {
  la::Vector gradient(control_size, 0.0);
  const auto& w = solver.quadrature_weights();
  for (std::size_t i = 0; i < solver.top_nodes().size(); ++i)
    gradient[solver.control_index(i)] += w[i] * lambda_flux[i];
  return gradient;
}

/// DAL on the full sparse-first path: direct solve, continuous adjoint
/// solve against the same operator, gradient = quadrature-weighted adjoint
/// flux. The baseline for the ROM strategy below.
class LaplaceFdDalStrategy final : public control::GradientStrategy {
 public:
  explicit LaplaceFdDalStrategy(
      std::shared_ptr<const LaplaceFdControlProblem> p)
      : problem_(std::move(p)) {}

  [[nodiscard]] std::string name() const override { return "DAL-sparse"; }

  bool set_adjoint_observer(control::AdjointObserver* observer) override {
    observer_ = observer;
    return true;
  }

  double value_and_gradient(const la::Vector& control,
                            la::Vector& gradient) override {
    const auto& solver = problem_->solver();
    la::SolveReport direct_report;
    const la::Vector u = solver.solve(control, &direct_report);
    direct_report.require_converged("laplace-fd DAL direct solve");
    const la::Vector flux = solver.flux_top(u);
    const double j = problem_->cost_from_flux(flux);

    la::SolveReport adjoint_report;
    const la::Vector lambda =
        solver.op().solve(adjoint_rhs(solver, flux), &adjoint_report);
    adjoint_report.require_converged("laplace-fd DAL adjoint solve");
    gradient = gradient_from_lambda_flux(solver, problem_->control_size(),
                                         solver.flux_top(lambda));
    // Both nodal fields are in hand anyway -- hand them to the estimator
    // (src/refine) before they go out of scope.
    if (observer_) observer_->on_adjoint_pair(u, lambda);
    return j;
  }

 private:
  std::shared_ptr<const LaplaceFdControlProblem> problem_;
  control::AdjointObserver* observer_ = nullptr;
};

/// DAL with both solves routed through the RomSolver. Each solve carries
/// the dual weight of its quantity of interest, so acceptance is judged on
/// what the optimisation loop actually consumes:
///   * direct solve: the cost J -- dual weight dJ/du = F^T (2 w (flux - t)),
///     evaluated at the reduced candidate (exact for this quadratic J up to
///     the candidate's own flux error);
///   * adjoint solve: the gradient's quadrature functional -- constant dual
///     weight F^T w.
class LaplaceRomDalStrategy final : public control::GradientStrategy {
 public:
  LaplaceRomDalStrategy(std::shared_ptr<const LaplaceFdControlProblem> p,
                        std::shared_ptr<RomSolver> rom)
      : problem_(std::move(p)), rom_(std::move(rom)) {
    const auto& solver = problem_->solver();
    adjoint_weight_ =
        solver.flux_top_adjoint(solver.quadrature_weights());
  }

  [[nodiscard]] std::string name() const override { return "DAL-rom"; }

  double value_and_gradient(const la::Vector& control,
                            la::Vector& gradient) override {
    const auto& solver = problem_->solver();
    const la::Vector u = rom_->solve(
        solver.rhs_for(control), [&solver](const la::Vector& candidate) {
          const la::Vector flux = solver.flux_top(candidate);
          const auto& w = solver.quadrature_weights();
          const auto& xs = solver.top_x();
          la::Vector y(flux.size());
          for (std::size_t i = 0; i < flux.size(); ++i)
            y[i] = 2.0 * w[i] *
                   (flux[i] - LaplaceSolver::target_flux(xs[i]));
          return solver.flux_top_adjoint(y);
        });
    const la::Vector flux = solver.flux_top(u);
    const double j = problem_->cost_from_flux(flux);

    const la::Vector lambda =
        rom_->solve(adjoint_rhs(solver, flux),
                    [this](const la::Vector&) { return adjoint_weight_; });
    gradient = gradient_from_lambda_flux(solver, problem_->control_size(),
                                         solver.flux_top(lambda));
    return j;
  }

 private:
  std::shared_ptr<const LaplaceFdControlProblem> problem_;
  std::shared_ptr<RomSolver> rom_;
  la::Vector adjoint_weight_;  ///< F^T w, the adjoint solve's dual weight
};

}  // namespace

std::unique_ptr<control::GradientStrategy> make_laplace_fd_dal(
    std::shared_ptr<const LaplaceFdControlProblem> problem) {
  return std::make_unique<LaplaceFdDalStrategy>(std::move(problem));
}

std::unique_ptr<control::GradientStrategy> make_laplace_rom_dal(
    std::shared_ptr<const LaplaceFdControlProblem> problem,
    std::shared_ptr<RomSolver> rom) {
  UPDEC_REQUIRE(rom != nullptr, "make_laplace_rom_dal: rom solver required");
  return std::make_unique<LaplaceRomDalStrategy>(std::move(problem),
                                                 std::move(rom));
}

}  // namespace updec::rom
