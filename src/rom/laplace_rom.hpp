#pragma once
/// \file laplace_rom.hpp
/// \brief The Laplace boundary-control problem on the sparse RBF-FD path,
///        with a DAL gradient strategy that routes both of its PDE solves
///        (direct and continuous adjoint) through a shared RomSolver.
///
/// The continuous adjoint of the Laplace control problem uses the SAME
/// system operator as the direct problem -- only the Dirichlet data on the
/// top wall changes -- so one POD basis per operator fingerprint serves
/// both solve streams, and a warm serve batch amortises its basis across
/// every DAL iteration of every job in the family.

#include <memory>

#include "control/problem.hpp"
#include "pde/laplace.hpp"
#include "rom/rom_solver.hpp"

namespace updec::rom {

/// J(c) over the RBF-FD (sparse) Laplace discretisation -- the full-path
/// twin of control::LaplaceControlProblem, sized for operators where the
/// dense collocation path is no longer affordable.
class LaplaceFdControlProblem final : public control::ControlProblem {
 public:
  LaplaceFdControlProblem(std::size_t grid_n, const rbf::Kernel& kernel,
                          const rbf::RbffdConfig& config = {},
                          const la::RobustSolveOptions& solver = {});

  /// Build over an explicit (e.g. adaptively refined) cloud; `previous` /
  /// `old_index` route stencil assembly through RbffdOperators' incremental
  /// path. See pde::LaplaceFdSolver's cloud constructor for the layout
  /// contract.
  LaplaceFdControlProblem(pc::PointCloud cloud, const rbf::Kernel& kernel,
                          const rbf::RbffdConfig& config = {},
                          const la::RobustSolveOptions& solver = {},
                          const rbf::RbffdOperators* previous = nullptr,
                          const std::vector<std::ptrdiff_t>* old_index =
                              nullptr);

  [[nodiscard]] std::string name() const override { return "laplace-fd"; }
  [[nodiscard]] std::size_t control_size() const override {
    return solver_.num_control();
  }
  [[nodiscard]] la::Vector initial_control() const override {
    return la::Vector(control_size(), 0.0);
  }
  [[nodiscard]] double cost(const la::Vector& control) const override;

  /// Cost from a precomputed top-wall flux (shared by the strategies).
  [[nodiscard]] double cost_from_flux(const la::Vector& flux) const;

  [[nodiscard]] const pde::LaplaceFdSolver& solver() const { return solver_; }
  /// Mutable access for serve-layer cache plumbing (memoized ILU factors).
  [[nodiscard]] pde::LaplaceFdSolver& solver() { return solver_; }

 private:
  pde::LaplaceFdSolver solver_;
};

/// DAL on the full sparse path (the baseline the ROM strategy is measured
/// against in bench_rom and the rom_vs_full oracle).
[[nodiscard]] std::unique_ptr<control::GradientStrategy> make_laplace_fd_dal(
    std::shared_ptr<const LaplaceFdControlProblem> problem);

/// DAL with both PDE solves routed through `rom`. Solves the RomSolver
/// accepts stay in the reduced space; rejected ones escalate to the same
/// full path make_laplace_fd_dal uses, so the strategy is never less
/// accurate than the estimator's advertised tolerance. `rom` must front the
/// problem's own operator (rom->operator_fingerprint() of solver().op()).
[[nodiscard]] std::unique_ptr<control::GradientStrategy> make_laplace_rom_dal(
    std::shared_ptr<const LaplaceFdControlProblem> problem,
    std::shared_ptr<RomSolver> rom);

}  // namespace updec::rom
