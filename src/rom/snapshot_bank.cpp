#include "rom/snapshot_bank.hpp"

#include <cmath>
#include <cstring>
#include <limits>

namespace updec::rom {

namespace {

/// Size a snapshot charges against the cap (payload + small bookkeeping).
std::size_t snapshot_bytes(const la::Vector& v) {
  return v.size() * sizeof(double) + 2 * sizeof(std::uint64_t);
}

/// FNV-1a over the raw vector bytes: bit-identical iterates deduplicate.
std::uint64_t content_hash(const la::Vector& v) {
  std::uint64_t h = 14695981039346656037ULL;
  const auto* p = reinterpret_cast<const unsigned char*>(v.data());
  for (std::size_t i = 0; i < v.size() * sizeof(double); ++i) {
    h ^= p[i];
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace

SnapshotBank::SnapshotBank(std::size_t byte_cap) : byte_cap_(byte_cap) {}

bool SnapshotBank::add(std::uint64_t fingerprint, const la::Vector& snapshot) {
  if (snapshot.size() == 0) return false;
  const std::size_t cost = snapshot_bytes(snapshot);
  if (cost > byte_cap_) return false;  // covers byte_cap_ == 0 too
  for (const double x : snapshot)
    if (!std::isfinite(x)) return false;
  const std::uint64_t hash = content_hash(snapshot);

  std::lock_guard lock(mutex_);
  Group& group = groups_[fingerprint];
  group.last_touch = ++touch_counter_;
  if (!group.hashes.insert(hash).second) return false;  // duplicate
  group.snaps.push_back(snapshot);
  group.snap_hashes.push_back(hash);
  bytes_ += cost;
  enforce_cap_locked();
  return true;
}

std::vector<la::Vector> SnapshotBank::snapshots(std::uint64_t fingerprint) {
  std::lock_guard lock(mutex_);
  const auto it = groups_.find(fingerprint);
  if (it == groups_.end()) return {};
  it->second.last_touch = ++touch_counter_;
  return it->second.snaps;
}

std::size_t SnapshotBank::count(std::uint64_t fingerprint) const {
  std::lock_guard lock(mutex_);
  const auto it = groups_.find(fingerprint);
  return it == groups_.end() ? 0 : it->second.snaps.size();
}

std::size_t SnapshotBank::bytes() const {
  std::lock_guard lock(mutex_);
  return bytes_;
}

std::uint64_t SnapshotBank::evictions() const {
  std::lock_guard lock(mutex_);
  return evictions_;
}

void SnapshotBank::clear() {
  std::lock_guard lock(mutex_);
  groups_.clear();
  bytes_ = 0;
}

void SnapshotBank::enforce_cap_locked() {
  while (bytes_ > byte_cap_) {
    // Victim group: least recently touched fingerprint (stalest family).
    auto victim = groups_.end();
    std::uint64_t oldest = std::numeric_limits<std::uint64_t>::max();
    for (auto it = groups_.begin(); it != groups_.end(); ++it) {
      if (!it->second.snaps.empty() && it->second.last_touch < oldest) {
        oldest = it->second.last_touch;
        victim = it;
      }
    }
    if (victim == groups_.end()) return;  // nothing evictable
    Group& group = victim->second;
    bytes_ -= snapshot_bytes(group.snaps.front());
    group.hashes.erase(group.snap_hashes.front());
    group.snaps.erase(group.snaps.begin());
    group.snap_hashes.erase(group.snap_hashes.begin());
    ++evictions_;
    if (group.snaps.empty()) groups_.erase(victim);
  }
}

}  // namespace updec::rom
