#pragma once
/// \file pod_basis.hpp
/// \brief POD basis via the method of snapshots.
///
/// For m snapshots s_1..s_m of dimension n (m << n in the serving regime),
/// the proper orthogonal decomposition is computed from the m x m Gram
/// matrix G_ij = <s_i, s_j> instead of the n x m snapshot matrix itself:
/// G = Phi diag(lambda) Phi^T by la::symmetric_eigen (cyclic Jacobi, robust
/// on the clustered and rank-deficient spectra near-duplicate snapshot sets
/// produce), then mode_j = sum_i Phi_ij s_i / sqrt(lambda_j) for every
/// eigenvalue above a relative energy floor. Orthonormality of the lifted
/// modes is re-checked through la/qr and repaired by modified Gram-Schmidt
/// when cancellation in the small-lambda modes degraded it.

#include <cstddef>
#include <vector>

#include "la/dense.hpp"

namespace updec::rom {

/// An orthonormal reduced basis V (n x k, columns = POD modes, descending
/// snapshot energy). Immutable after construction; safe to share across
/// threads behind shared_ptr<const PodBasis>.
struct PodBasis {
  la::Matrix modes;        ///< n x k, orthonormal columns
  la::Vector eigenvalues;  ///< retained Gram eigenvalues, descending
  std::size_t snapshot_count = 0;  ///< snapshots the basis was built from

  [[nodiscard]] std::size_t n() const { return modes.rows(); }
  [[nodiscard]] std::size_t k() const { return modes.cols(); }

  /// V^T x: full -> reduced coordinates.
  [[nodiscard]] la::Vector project(const la::Vector& x) const;
  /// V xr: reduced -> full coordinates.
  [[nodiscard]] la::Vector lift(const la::Vector& xr) const;
  /// max_ij |(V^T V - I)_ij| -- the orthonormality defect.
  [[nodiscard]] double orthonormality_defect() const;
};

/// Build a POD basis of rank <= max_k from `snapshots` (all the same
/// dimension). Eigenvalues below `rel_tol * lambda_max` are discarded, so a
/// rank-deficient snapshot set (duplicates, converged trajectories) yields
/// k < m rather than garbage modes. Throws updec::Error on empty or
/// inconsistent input; returns k = 0 when no snapshot carries energy.
[[nodiscard]] PodBasis build_pod_basis(
    const std::vector<la::Vector>& snapshots, std::size_t max_k,
    double rel_tol = 1e-10);

}  // namespace updec::rom
