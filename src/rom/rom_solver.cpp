#include "rom/rom_solver.hpp"

#include <atomic>
#include <cmath>
#include <utility>

#include "la/blas.hpp"
#include "util/error.hpp"
#include "util/log.hpp"
#include "util/metrics.hpp"
#include "util/trace.hpp"

namespace updec::rom {

namespace {

// Process-wide tallies, reported by updec_serve even when the metrics
// registry is compiled out or disabled.
std::atomic<std::uint64_t> g_reduced{0};
std::atomic<std::uint64_t> g_escalated{0};
std::atomic<std::uint64_t> g_rebuilds{0};

}  // namespace

RomTotals process_totals() {
  RomTotals t;
  t.reduced = g_reduced.load(std::memory_order_relaxed);
  t.escalated = g_escalated.load(std::memory_order_relaxed);
  t.rebuilds = g_rebuilds.load(std::memory_order_relaxed);
  return t;
}

RomSolver::RomSolver(const la::SparseFirstSolver& full, SnapshotBank& bank,
                     std::uint64_t fingerprint, RomConfig config)
    : full_(full), bank_(bank), fingerprint_(fingerprint), config_(config) {
  UPDEC_REQUIRE(full_.valid(), "RomSolver needs a valid full solver");
}

void RomSolver::adopt_basis_locked(std::shared_ptr<const PodBasis> basis,
                                   bool count_rebuild) {
  UPDEC_REQUIRE(basis != nullptr && basis->k() > 0,
                "RomSolver: cannot adopt an empty basis");
  UPDEC_REQUIRE(basis->n() == full_.size(),
                "RomSolver: basis dimension does not match the operator");
  UPDEC_TRACE_SCOPE("rom/project_operator");
  // Galerkin projection A_r = V^T (A V): one multi-column spmv plus a small
  // dense product, factored once per basis generation. Both intermediates
  // are kept so try_extend_locked can grow them rank-by-rank.
  auto reduced = std::make_shared<Reduced>();
  reduced->av = full_.matrix().apply_many(basis->modes);
  reduced->ar = la::matmul(basis->modes.transposed(), reduced->av);
  reduced->lu = la::LuFactorization(reduced->ar);
  reduced->basis = std::move(basis);
  reduced_ = std::move(reduced);
  stats_.k = reduced_->basis->k();
  if (count_rebuild) {
    ++stats_.rebuilds;
    g_rebuilds.fetch_add(1, std::memory_order_relaxed);
    UPDEC_METRIC_ADD("rom/basis.rebuilds", 1);
  }
  UPDEC_METRIC_GAUGE_SET("rom/basis.k", static_cast<double>(stats_.k));
  if (on_rebuild_ && count_rebuild) on_rebuild_(*reduced_->basis);
}

void RomSolver::maybe_rebuild_locked() {
  const std::size_t count = bank_.count(fingerprint_);
  if (count < config_.min_snapshots) return;
  // Geometric rebuild cadence: the first basis appears after min_snapshots
  // harvests, then each rebuild waits for the training set to grow by
  // max(min_snapshots, its previous size). A fixed increment would rebuild
  // O(escalations / min_snapshots) times -- on a hard trajectory the
  // O(m^2 n) Gram passes then cost more than the full solves they avoid.
  if (reduced_ != nullptr &&
      count < built_from_ + std::max(config_.min_snapshots, built_from_))
    return;
  UPDEC_TRACE_SCOPE("rom/build_basis");
  try {
    // Sliding-window POD: the Gram stage is O(m^2 n) in the snapshot count
    // m, so rebuilding from an unboundedly growing bank would make every
    // rebuild slower than the solves it accelerates. The newest snapshots
    // carry the current trajectory (and install_basis re-seeds the
    // persisted span as sigma-scaled modes, which land in this window like
    // any other snapshot), so a 4 * max_k tail loses nothing a rank-max_k
    // basis could have kept anyway.
    std::vector<la::Vector> snaps = bank_.snapshots(fingerprint_);
    const std::size_t window =
        std::max(config_.min_snapshots, 4 * config_.max_k);
    if (snaps.size() > window)
      snaps.erase(snaps.begin(),
                  snaps.end() - static_cast<std::ptrdiff_t>(window));
    PodBasis basis = build_pod_basis(snaps, config_.max_k);
    if (basis.k() == 0) return;  // no energy yet; keep whatever we had
    adopt_basis_locked(std::make_shared<const PodBasis>(std::move(basis)),
                       /*count_rebuild=*/true);
    built_from_ = count;
  } catch (const std::exception& e) {
    // A failed build (degenerate Gram, singular projection) must never take
    // down a solve: the full path below is always available.
    log_warn() << "rom: basis build failed (" << e.what()
               << "); keeping the previous basis";
    built_from_ = count;  // don't retry on every solve
  }
}

bool RomSolver::try_extend_locked(const la::Vector& x) {
  if (reduced_ == nullptr) return false;
  const PodBasis& old = *reduced_->basis;
  const std::size_t k = old.k();
  const std::size_t n = old.n();
  if (k >= config_.max_k || k >= n) return false;
  // Defect of the escalated solution against the CURRENT basis (it may have
  // grown since the reduced candidate was rejected). Two projection passes
  // clean up the roundoff the first one leaves behind.
  la::Vector d = x;
  for (int pass = 0; pass < 2; ++pass)
    la::axpy(-1.0, old.lift(old.project(d)), d);
  const double x_norm = la::nrm2(x);
  const double d_norm = la::nrm2(d);
  if (!(d_norm > 1e-10 * (x_norm + 1e-300))) return false;  // nothing new
  la::scal(1.0 / d_norm, d);

  UPDEC_TRACE_SCOPE("rom/extend_basis");
  auto basis = std::make_shared<PodBasis>();
  basis->snapshot_count = old.snapshot_count + 1;
  basis->modes = la::Matrix(n, k + 1);
  basis->eigenvalues = la::Vector(k + 1);
  for (std::size_t j = 0; j < k; ++j) {
    basis->eigenvalues[j] = old.eigenvalues[j];
    for (std::size_t r = 0; r < n; ++r)
      basis->modes(r, j) = old.modes(r, j);
  }
  for (std::size_t r = 0; r < n; ++r) basis->modes(r, k) = d[r];
  // Energy bookkeeping only feeds install_basis reseeding and the codec's
  // descending-order invariant; charge the new mode the solution's energy,
  // clamped to keep the spectrum monotone.
  basis->eigenvalues[k] =
      k > 0 ? std::min(old.eigenvalues[k - 1], x_norm * x_norm)
            : x_norm * x_norm;

  // Grow A V by one spmv and A_r by one bordered row/column; the k x k
  // refactor is the only superlinear piece and k is small by construction.
  la::Vector ad(n, 0.0);
  full_.matrix().spmv(1.0, d, 0.0, ad);
  auto next = std::make_shared<Reduced>();
  next->av = la::Matrix(n, k + 1);
  next->ar = la::Matrix(k + 1, k + 1);
  for (std::size_t j = 0; j < k; ++j)
    for (std::size_t r = 0; r < n; ++r)
      next->av(r, j) = reduced_->av(r, j);
  for (std::size_t r = 0; r < n; ++r) next->av(r, k) = ad[r];
  for (std::size_t i = 0; i < k; ++i)
    for (std::size_t j = 0; j < k; ++j) next->ar(i, j) = reduced_->ar(i, j);
  const la::Vector col = la::matvec_t(old.modes, ad);   // V^T (A d)
  const la::Vector row = la::matvec_t(reduced_->av, d); // d^T (A V)
  for (std::size_t i = 0; i < k; ++i) {
    next->ar(i, k) = col[i];
    next->ar(k, i) = row[i];
  }
  next->ar(k, k) = la::dot(d, ad);
  try {
    next->lu = la::LuFactorization(next->ar);
  } catch (const std::exception& e) {
    log_warn() << "rom: basis extension refactor failed (" << e.what()
               << "); keeping the previous basis";
    return false;
  }
  next->basis = basis;
  reduced_ = std::move(next);
  stats_.k = k + 1;
  UPDEC_METRIC_GAUGE_SET("rom/basis.k", static_cast<double>(stats_.k));
  if (on_rebuild_) on_rebuild_(*basis);
  return true;
}

void RomSolver::install_basis(std::shared_ptr<const PodBasis> basis) {
  if (basis == nullptr || basis->k() == 0) return;
  std::lock_guard lock(mutex_);
  if (basis->n() != full_.size()) {
    log_warn() << "rom: ignoring persisted basis of dimension " << basis->n()
               << " for an operator of size " << full_.size();
    return;
  }
  // Re-seed the bank with the energy-scaled modes so a later enrichment
  // rebuild starts from the persisted span instead of forgetting it.
  for (std::size_t j = 0; j < basis->k(); ++j) {
    la::Vector snap(basis->n());
    const double sigma = std::sqrt(std::max(basis->eigenvalues[j], 0.0));
    for (std::size_t r = 0; r < basis->n(); ++r)
      snap[r] = sigma * basis->modes(r, j);
    if (bank_.add(fingerprint_, snap)) ++stats_.harvested;
  }
  adopt_basis_locked(std::move(basis), /*count_rebuild=*/false);
  built_from_ = bank_.count(fingerprint_);
}

std::shared_ptr<const PodBasis> RomSolver::basis() const {
  std::lock_guard lock(mutex_);
  return reduced_ ? reduced_->basis : nullptr;
}

void RomSolver::on_basis_rebuilt(std::function<void(const PodBasis&)> cb) {
  std::lock_guard lock(mutex_);
  on_rebuild_ = std::move(cb);
}

RomStats RomSolver::stats() const {
  std::lock_guard lock(mutex_);
  return stats_;
}

la::Vector RomSolver::solve(const la::Vector& b, const Functional& functional,
                            RomSolveReport* report) {
  UPDEC_REQUIRE(b.size() == full_.size(), "RomSolver::solve: rhs size");
  RomSolveReport local;
  std::shared_ptr<const Reduced> reduced;
  {
    std::lock_guard lock(mutex_);
    maybe_rebuild_locked();
    reduced = reduced_;
  }

  if (reduced != nullptr) {
    UPDEC_TRACE_SCOPE("rom/reduced_solve");
    const PodBasis& basis = *reduced->basis;
    local.k = basis.k();
    const la::Vector xr = reduced->lu.solve(basis.project(b));
    const la::Vector x = basis.lift(xr);
    la::Vector r = b;  // r = b - A x
    full_.matrix().spmv(-1.0, x, 1.0, r);
    const double b_norm = la::nrm2(b);
    const double residual_rel =
        b_norm > 0.0 ? la::nrm2(r) / b_norm : la::nrm2(r);
    double estimate = residual_rel;
    if (functional) {
      const la::Vector g = functional(x);
      UPDEC_REQUIRE(g.size() == full_.size(),
                    "RomSolver: functional weight size mismatch");
      // Reduced dual solve z = V A_r^{-T} V^T g; |z . r| estimates the error
      // in the quantity of interest g . x. The residual floor guards against
      // a dual weight the basis cannot represent (z misleadingly small).
      const la::Vector zr = reduced->lu.solve_transpose(basis.project(g));
      const la::Vector z = basis.lift(zr);
      const double qoi = std::abs(la::dot(g, x));
      const double dwr = std::abs(la::dot(z, r)) / (1.0 + qoi);
      estimate = std::max(dwr, 0.01 * residual_rel);
    }
    local.estimate = estimate;
    if (std::isfinite(estimate) && estimate <= config_.tol) {
      local.reduced = true;
      {
        std::lock_guard lock(mutex_);
        ++stats_.reduced;
      }
      g_reduced.fetch_add(1, std::memory_order_relaxed);
      UPDEC_METRIC_ADD("rom/solves.reduced", 1);
      if (report != nullptr) *report = local;
      return x;
    }
  }

  // Escalate: the full sparse-first path answers, and the solve becomes an
  // enrichment snapshot -- a state the current basis failed to capture.
  UPDEC_TRACE_SCOPE("rom/escalated_solve");
  la::SolveReport solve_report;
  la::Vector x = full_.solve(b, &solve_report);
  solve_report.require_converged("rom escalated full solve");
  local.escalated = true;
  const bool harvested = bank_.add(fingerprint_, x);
  {
    std::lock_guard lock(mutex_);
    ++stats_.escalated;
    if (harvested) ++stats_.harvested;
    // Teach the basis the direction it just missed before the next solve
    // asks for it again (no-op without a basis or at the max_k cap, where
    // the geometric-cadence POD rebuild acts as the compression pass).
    try_extend_locked(x);
  }
  g_escalated.fetch_add(1, std::memory_order_relaxed);
  UPDEC_METRIC_ADD("rom/solves.escalated", 1);
  if (report != nullptr) *report = local;
  return x;
}

}  // namespace updec::rom
