#pragma once
/// \file rom_solver.hpp
/// \brief POD/Galerkin reduced-order solver with dual-weighted residual
///        acceptance and transparent escalation to the full sparse path.
///
/// A RomSolver fronts one la::SparseFirstSolver (one operator family,
/// identified by its content fingerprint). Each solve first tries the
/// reduced space: with V the POD basis and A_r = V^T A V factored once per
/// basis (k x k dense LU), a candidate x = V A_r^{-1} V^T b costs O(nk)
/// instead of a Krylov chain or an O(n^2) backsolve. The candidate is
/// accepted only when its error estimate clears UPDEC_ROM_TOL:
///
///   * with a functional g (the dual weight of the caller's quantity of
///     interest, e.g. the flux-mismatch derivative of the DAL cost), the
///     dual-weighted residual |z . r| / (1 + |g . x|) with z = V A_r^{-T}
///     V^T g and r = b - A x -- the classic DWR estimate restricted to the
///     reduced space -- plus a residual-norm floor that catches the case
///     where the dual weight itself is badly represented in the basis;
///   * without a functional, the plain relative residual ||r|| / ||b||.
///
/// A rejected candidate escalates transparently: the full solver answers,
/// and its solution is harvested into the SnapshotBank as an enrichment
/// snapshot -- exactly the right training data, because it is a state the
/// current basis provably cannot represent. While the basis has spare rank
/// the solver also extends it IMMEDIATELY: the escalated solution's
/// projection defect x - V V^T x is orthonormalised and appended as a new
/// mode, with the cached A V and A_r = V^T A V grown incrementally (one
/// spmv plus an O(k^2) refactor). Waiting for a batched POD rebuild here
/// would let consecutive escalations harvest near-copies of the same
/// missing direction -- inflating that direction's Gram energy until the
/// relative energy floor truncates everything else. Full POD rebuilds
/// still run on a geometric cadence as a compression pass over the bank,
/// so the reduced space adapts toward the batch's actual trajectory (the
/// adjoint-driven progressive POD adaptation pattern).
///
/// Thread-safe: the serve scheduler shares one RomSolver across every job
/// of an operator family. Reduced-space solves run lock-free against an
/// immutable shared snapshot of (basis, LU); only stats updates and basis
/// swaps take the mutex.

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>

#include "la/lu.hpp"
#include "la/robust_solve.hpp"
#include "rom/config.hpp"
#include "rom/pod_basis.hpp"
#include "rom/snapshot_bank.hpp"

namespace updec::rom {

/// Outcome of one RomSolver::solve call.
struct RomSolveReport {
  bool reduced = false;    ///< answered in the reduced space
  bool escalated = false;  ///< fell through to the full sparse path
  double estimate = 0.0;   ///< error estimate of the reduced candidate
  std::size_t k = 0;       ///< basis rank at solve time (0 = no basis yet)
};

/// Cumulative per-solver counters (a copy; the solver keeps mutating).
struct RomStats {
  std::uint64_t reduced = 0;    ///< solves answered in reduced space
  std::uint64_t escalated = 0;  ///< solves answered by the full path
  std::uint64_t rebuilds = 0;   ///< POD basis (re)builds
  std::uint64_t harvested = 0;  ///< snapshots actually stored in the bank
  std::size_t k = 0;            ///< current basis rank
};

/// Process-wide ROM counters for serving reports (independent of the
/// metrics registry, so `updec_serve` can always report them).
struct RomTotals {
  std::uint64_t reduced = 0;
  std::uint64_t escalated = 0;
  std::uint64_t rebuilds = 0;
};
[[nodiscard]] RomTotals process_totals();

class RomSolver {
 public:
  /// Maps a reduced candidate solution to the dual-weight vector g of the
  /// caller's quantity of interest (may depend on the candidate for
  /// nonlinear functionals). An empty function selects the plain relative
  /// residual estimate.
  using Functional = std::function<la::Vector(const la::Vector& candidate)>;

  /// `full` and `bank` must outlive the solver. `fingerprint` is the
  /// operator's content address (serve::fingerprint of the CSR matrix) --
  /// it namespaces this solver's snapshots inside the shared bank.
  RomSolver(const la::SparseFirstSolver& full, SnapshotBank& bank,
            std::uint64_t fingerprint, RomConfig config);

  RomSolver(const RomSolver&) = delete;
  RomSolver& operator=(const RomSolver&) = delete;

  /// Solve A x = b: reduced space if the estimate clears config().tol,
  /// full path otherwise (never silently -- every escalation is counted
  /// and reported). Throws updec::Error if the FULL path fails to converge.
  [[nodiscard]] la::Vector solve(const la::Vector& b,
                                 const Functional& functional = {},
                                 RomSolveReport* report = nullptr);

  /// Install a persisted basis (warm restart). The basis modes are also
  /// re-seeded into the snapshot bank (scaled by their singular values, so
  /// a later enrichment rebuild reproduces the old spectrum exactly) --
  /// without this, a rebuild from fresh escalations alone would forget the
  /// span the persisted basis already learned.
  void install_basis(std::shared_ptr<const PodBasis> basis);

  /// Current basis (nullptr before the first build).
  [[nodiscard]] std::shared_ptr<const PodBasis> basis() const;

  /// Observer invoked (under the solver mutex) after every basis rebuild;
  /// the serve layer persists the basis as a pod-basis cache artefact here.
  /// The callback must not call back into this solver.
  void on_basis_rebuilt(std::function<void(const PodBasis&)> callback);

  [[nodiscard]] RomStats stats() const;
  [[nodiscard]] std::uint64_t operator_fingerprint() const {
    return fingerprint_;
  }
  [[nodiscard]] const RomConfig& config() const { return config_; }

 private:
  /// Immutable (basis, reduced operator) bundle swapped atomically under
  /// the mutex. `av` and `ar` are kept (not just the LU) so an escalation
  /// can grow the basis by one mode with a single spmv instead of
  /// re-projecting the operator from scratch.
  struct Reduced {
    std::shared_ptr<const PodBasis> basis;
    la::Matrix av;           ///< A V, n x k
    la::Matrix ar;           ///< A_r = V^T A V, k x k
    la::LuFactorization lu;  ///< of ar
  };

  /// Rebuild from the bank when enough new snapshots accumulated. Caller
  /// holds mutex_.
  void maybe_rebuild_locked();
  /// Append the part of `x` the current basis misses as a fresh mode,
  /// growing av/ar/lu incrementally. Returns false when there is no basis,
  /// no spare rank (k == max_k), or nothing new in `x`. Caller holds mutex_.
  bool try_extend_locked(const la::Vector& x);
  /// Project the operator onto `basis` and swap it in. Caller holds mutex_.
  void adopt_basis_locked(std::shared_ptr<const PodBasis> basis,
                          bool count_rebuild);

  const la::SparseFirstSolver& full_;
  SnapshotBank& bank_;
  const std::uint64_t fingerprint_;
  const RomConfig config_;

  mutable std::mutex mutex_;
  std::shared_ptr<const Reduced> reduced_;  ///< nullptr before first build
  std::size_t built_from_ = 0;  ///< bank count at the last (re)build
  RomStats stats_;
  std::function<void(const PodBasis&)> on_rebuild_;
};

}  // namespace updec::rom
