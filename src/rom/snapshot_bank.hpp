#pragma once
/// \file snapshot_bank.hpp
/// \brief Bounded, deduplicated store of solution snapshots per operator.
///
/// Every full-path solve the ROM tier performs (cold starts and accuracy
/// escalations alike) is a free training sample: its solution is harvested
/// here, grouped by the 128-bit-reduced operator fingerprint of the system
/// it solved, and later turned into a POD basis by build_pod_basis(). The
/// bank is shared by every job of a serve batch, so it is thread-safe, and
/// it is memory-bounded: snapshots are deduplicated by content hash (an
/// optimisation trajectory re-visiting an iterate contributes nothing new)
/// and a byte cap evicts the OLDEST snapshot of the LEAST-recently-touched
/// fingerprint group first -- active operator families keep their training
/// sets while stale ones fade out.

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "la/dense.hpp"

namespace updec::rom {

class SnapshotBank {
 public:
  /// `byte_cap` 0 disables storage entirely (every add() is rejected).
  explicit SnapshotBank(std::size_t byte_cap);

  SnapshotBank(const SnapshotBank&) = delete;
  SnapshotBank& operator=(const SnapshotBank&) = delete;

  /// Harvest one solution snapshot for the operator `fingerprint`. Returns
  /// false when nothing was stored: a bit-identical duplicate, a non-finite
  /// vector, an empty vector, or a snapshot bigger than the whole cap.
  bool add(std::uint64_t fingerprint, const la::Vector& snapshot);

  /// Copy of the snapshots currently held for `fingerprint`, oldest first
  /// (touches the group's recency). Empty when the fingerprint is unknown.
  [[nodiscard]] std::vector<la::Vector> snapshots(std::uint64_t fingerprint);

  /// Snapshots currently held for `fingerprint` (0 when unknown).
  [[nodiscard]] std::size_t count(std::uint64_t fingerprint) const;

  [[nodiscard]] std::size_t bytes() const;
  [[nodiscard]] std::size_t byte_cap() const { return byte_cap_; }
  [[nodiscard]] std::uint64_t evictions() const;

  void clear();

 private:
  struct Group {
    std::vector<la::Vector> snaps;             ///< oldest first
    std::vector<std::uint64_t> snap_hashes;    ///< parallel to snaps
    std::unordered_set<std::uint64_t> hashes;  ///< content dedup
    std::uint64_t last_touch = 0;
  };

  /// Caller holds mutex_. Evicts until bytes_ <= byte_cap_.
  void enforce_cap_locked();

  const std::size_t byte_cap_;
  mutable std::mutex mutex_;
  std::unordered_map<std::uint64_t, Group> groups_;
  std::size_t bytes_ = 0;
  std::uint64_t evictions_ = 0;
  std::uint64_t touch_counter_ = 0;
};

}  // namespace updec::rom
