#include "rom/pod_basis.hpp"

#include <cmath>

#include "la/blas.hpp"
#include "la/eigen.hpp"
#include "la/qr.hpp"
#include "util/error.hpp"

namespace updec::rom {

la::Vector PodBasis::project(const la::Vector& x) const {
  UPDEC_REQUIRE(x.size() == n(), "PodBasis::project: dimension mismatch");
  return la::matvec_t(modes, x);
}

la::Vector PodBasis::lift(const la::Vector& xr) const {
  UPDEC_REQUIRE(xr.size() == k(), "PodBasis::lift: dimension mismatch");
  return la::matvec(modes, xr);
}

double PodBasis::orthonormality_defect() const {
  double defect = 0.0;
  for (std::size_t i = 0; i < k(); ++i) {
    for (std::size_t j = i; j < k(); ++j) {
      double s = 0.0;
      for (std::size_t r = 0; r < n(); ++r) s += modes(r, i) * modes(r, j);
      defect = std::max(defect, std::abs(s - (i == j ? 1.0 : 0.0)));
    }
  }
  return defect;
}

namespace {

/// Modified Gram-Schmidt re-orthonormalisation with column dropping:
/// repairs the cancellation the small-lambda snapshot combinations suffer,
/// discarding directions that collapsed below numerical rank. Shrinks
/// `eigenvalues` alongside the surviving columns.
void mgs_reorthonormalize(la::Matrix& modes, la::Vector& eigenvalues) {
  const std::size_t n = modes.rows();
  const std::size_t k = modes.cols();
  std::vector<la::Vector> kept;
  std::vector<double> kept_lambda;
  la::Vector v(n);
  for (std::size_t j = 0; j < k; ++j) {
    for (std::size_t r = 0; r < n; ++r) v[r] = modes(r, j);
    for (int pass = 0; pass < 2; ++pass)  // twice is enough (Kahan)
      for (const la::Vector& q : kept) la::axpy(-la::dot(q, v), q, v);
    const double norm = la::nrm2(v);
    if (norm < 1e-12) continue;
    la::scal(1.0 / norm, v);
    kept.push_back(v);
    kept_lambda.push_back(eigenvalues[j]);
  }
  la::Matrix repaired(n, kept.size());
  for (std::size_t j = 0; j < kept.size(); ++j)
    for (std::size_t r = 0; r < n; ++r) repaired(r, j) = kept[j][r];
  modes = std::move(repaired);
  eigenvalues = la::Vector(kept_lambda.size());
  for (std::size_t j = 0; j < eigenvalues.size(); ++j)
    eigenvalues[j] = kept_lambda[j];
}

}  // namespace

PodBasis build_pod_basis(const std::vector<la::Vector>& snapshots,
                         std::size_t max_k, double rel_tol) {
  UPDEC_REQUIRE(!snapshots.empty(),
                "build_pod_basis: at least one snapshot required");
  const std::size_t n = snapshots.front().size();
  UPDEC_REQUIRE(n > 0, "build_pod_basis: empty snapshots");
  const std::size_t m = snapshots.size();
  for (const la::Vector& s : snapshots)
    UPDEC_REQUIRE(s.size() == n,
                  "build_pod_basis: inconsistent snapshot dimensions");

  // Method of snapshots: the m x m Gram spectrum carries the POD energies.
  la::Matrix gram(m, m);
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t j = 0; j <= i; ++j) {
      const double g = la::dot(snapshots[i], snapshots[j]);
      gram(i, j) = g;
      gram(j, i) = g;
    }
  const la::SymmetricEigenResult eig = la::symmetric_eigen(gram);

  PodBasis basis;
  basis.snapshot_count = m;
  const double lambda_max = eig.eigenvalues.size() ? eig.eigenvalues[0] : 0.0;
  std::size_t k = 0;
  while (k < m && k < max_k && eig.eigenvalues[k] > rel_tol * lambda_max &&
         eig.eigenvalues[k] > 0.0)
    ++k;
  // Cap the rank at the full dimension: with m > n snapshots the Gram matrix
  // is rank-deficient anyway, but guard the lift explicitly.
  k = std::min(k, n);
  if (k == 0) {
    basis.modes = la::Matrix(n, 0);
    basis.eigenvalues = la::Vector(0);
    return basis;
  }

  basis.modes = la::Matrix(n, k, 0.0);
  basis.eigenvalues = la::Vector(k);
  for (std::size_t j = 0; j < k; ++j) {
    basis.eigenvalues[j] = eig.eigenvalues[j];
    const double inv_sigma = 1.0 / std::sqrt(eig.eigenvalues[j]);
    for (std::size_t i = 0; i < m; ++i) {
      const double w = eig.eigenvectors(i, j) * inv_sigma;
      if (w == 0.0) continue;
      const la::Vector& s = snapshots[i];
      for (std::size_t r = 0; r < n; ++r) basis.modes(r, j) += w * s[r];
    }
  }

  // Re-check orthonormality through the QR of the lifted modes: for an
  // orthonormal V, R is diag(+-1) so |R_kk|/|R_11| == 1 up to roundoff. Any
  // degradation (tiny-lambda cancellation) gets repaired by MGS.
  const la::QrFactorization qr(basis.modes);
  const bool healthy = qr.valid() && qr.diagonal_ratio() > 0.999 &&
                       basis.orthonormality_defect() < 1e-8;
  if (!healthy) mgs_reorthonormalize(basis.modes, basis.eigenvalues);
  UPDEC_REQUIRE(basis.orthonormality_defect() < 1e-6,
                "build_pod_basis: modes failed to orthonormalise");
  return basis;
}

}  // namespace updec::rom
