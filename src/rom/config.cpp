#include "rom/config.hpp"

#include <algorithm>

#include "util/env.hpp"

namespace updec::rom {

RomConfig config_from_env() {
  RomConfig config;
  config.enabled = env::get_bool("UPDEC_ROM", config.enabled);
  config.tol = std::max(0.0, env::get_double("UPDEC_ROM_TOL", config.tol));
  config.max_k = static_cast<std::size_t>(env::get_u64(
      "UPDEC_ROM_MAX_K", static_cast<std::uint64_t>(config.max_k)));
  config.min_snapshots = std::max<std::size_t>(
      1, static_cast<std::size_t>(env::get_u64(
             "UPDEC_ROM_MIN_SNAPSHOTS",
             static_cast<std::uint64_t>(config.min_snapshots))));
  config.snapshot_bytes = static_cast<std::size_t>(env::get_u64(
      "UPDEC_ROM_SNAPSHOT_BYTES",
      static_cast<std::uint64_t>(config.snapshot_bytes)));
  return config;
}

}  // namespace updec::rom
