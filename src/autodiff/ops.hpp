#pragma once
/// \file ops.hpp
/// Vector-valued tape operations with hand-written VJPs.
///
/// These are the equivalents of JAX's fused primitives: instead of recording
/// one scalar node per multiply-add, an SpMV or a dense linear solve records
/// a single custom operation whose backward pass is the textbook adjoint
/// identity. The linear-solve VJP (x = A^{-1} b  =>  b_bar = A^{-T} x_bar,
/// A_bar = -lambda x^T) is what makes the DP strategy tractable: gradients
/// traverse the solver at the cost of one transpose solve instead of
/// differentiating the factorisation itself.

#include <memory>
#include <vector>

#include "autodiff/var_math.hpp"
#include "la/lu.hpp"
#include "la/robust_solve.hpp"
#include "la/sparse.hpp"

namespace updec::ad {

/// A vector of tape scalars.
using VarVec = std::vector<Var>;

// ---- construction / extraction ----

/// Lift a numeric vector onto the tape as differentiable leaves.
VarVec make_variables(Tape& tape, const la::Vector& values);

/// Lift a numeric vector as constants (identical representation; named for
/// intent at call sites).
VarVec make_constants(Tape& tape, const la::Vector& values);

/// Forward values of a VarVec.
[[nodiscard]] la::Vector values(const VarVec& v);

/// Adjoints of a VarVec (after Tape::backward).
[[nodiscard]] la::Vector adjoints(const VarVec& v);

/// Detach every component (values flow, gradients do not).
[[nodiscard]] VarVec stop_gradient(const VarVec& v);

// ---- reductions ----

/// Sum of all components as one custom node.
Var sum(const VarVec& v);

/// Inner product of two tape vectors (snapshots both values for the VJP).
Var dot(const VarVec& a, const VarVec& b);

/// Inner product with a constant weight vector (e.g. quadrature weights).
Var dot(const VarVec& a, const la::Vector& w);

// ---- linear maps with constant operators ----
// The operator is captured by reference and MUST outlive the tape; PDE
// solvers own their differentiation matrices for the whole optimisation.

/// y = A x for a constant sparse A. VJP: x_bar += A^T y_bar.
VarVec spmv(const la::CsrMatrix& a, const VarVec& x);

/// y = A x for a constant dense A.
VarVec gemv(const la::Matrix& a, const VarVec& x);

/// x = A^{-1} b with a constant, pre-factored A.
/// VJP: b_bar += A^{-T} x_bar (one transpose solve).
VarVec solve(const la::LuFactorization& lu, const VarVec& b);

/// x = A^{-1} b through the sparse-first chain (constant operator).
/// VJP: b_bar += A^{-T} x_bar, one solve_transpose through the same chain
/// (ILU-GMRES on A^T at large N, the shared dense factors below the
/// threshold).
VarVec solve(const la::SparseFirstSolver& op, const VarVec& b);

// ---- linear solve with a differentiable matrix ----

/// x = A^{-1} b where the n*n entries of A (row-major in `a_flat`) are tape
/// variables. Factors A once at forward time and keeps the factorisation for
/// the VJP:  lambda = A^{-T} x_bar,  b_bar += lambda,  A_bar -= lambda x^T.
VarVec solve(const VarVec& a_flat, const VarVec& b);

// ---- elementwise helpers (scalar-node based) ----

VarVec add(const VarVec& a, const VarVec& b);
VarVec sub(const VarVec& a, const VarVec& b);
VarVec hadamard(const VarVec& a, const VarVec& b);
VarVec scale(double s, const VarVec& a);
/// a + s * b (the AD analogue of axpy).
VarVec add_scaled(const VarVec& a, double s, const VarVec& b);

}  // namespace updec::ad
