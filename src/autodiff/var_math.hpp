#pragma once
/// \file var_math.hpp
/// Scalar operator overloads and math functions for ad::Var. Together with
/// tape.hpp these make any scalar algorithm differentiable by swapping
/// `double` for `Var` — the same trick JAX plays on NumPy programs.

#include <cmath>

#include "autodiff/tape.hpp"

namespace updec::ad {

namespace detail {
inline Tape& same_tape(const Var& a, const Var& b) {
  UPDEC_REQUIRE(a.tape() != nullptr && a.tape() == b.tape(),
                "operands live on different tapes");
  return *a.tape();
}
}  // namespace detail

// ---- arithmetic: Var (+,-,*,/) Var ----

inline Var operator+(const Var& a, const Var& b) {
  Tape& t = detail::same_tape(a, b);
  return t.node2(a.value() + b.value(), a.index(), 1.0, b.index(), 1.0);
}

inline Var operator-(const Var& a, const Var& b) {
  Tape& t = detail::same_tape(a, b);
  return t.node2(a.value() - b.value(), a.index(), 1.0, b.index(), -1.0);
}

inline Var operator*(const Var& a, const Var& b) {
  Tape& t = detail::same_tape(a, b);
  return t.node2(a.value() * b.value(), a.index(), b.value(), b.index(),
                 a.value());
}

inline Var operator/(const Var& a, const Var& b) {
  Tape& t = detail::same_tape(a, b);
  const double inv = 1.0 / b.value();
  return t.node2(a.value() * inv, a.index(), inv, b.index(),
                 -a.value() * inv * inv);
}

// ---- arithmetic with double constants ----

inline Var operator+(const Var& a, double c) {
  return a.tape()->node1(a.value() + c, a.index(), 1.0);
}
inline Var operator+(double c, const Var& a) { return a + c; }

inline Var operator-(const Var& a, double c) {
  return a.tape()->node1(a.value() - c, a.index(), 1.0);
}
inline Var operator-(double c, const Var& a) {
  return a.tape()->node1(c - a.value(), a.index(), -1.0);
}

inline Var operator*(const Var& a, double c) {
  return a.tape()->node1(a.value() * c, a.index(), c);
}
inline Var operator*(double c, const Var& a) { return a * c; }

inline Var operator/(const Var& a, double c) { return a * (1.0 / c); }
inline Var operator/(double c, const Var& a) {
  const double inv = 1.0 / a.value();
  return a.tape()->node1(c * inv, a.index(), -c * inv * inv);
}

inline Var operator-(const Var& a) {
  return a.tape()->node1(-a.value(), a.index(), -1.0);
}
inline Var operator+(const Var& a) { return a; }

// ---- compound assignment ----

inline Var& operator+=(Var& a, const Var& b) { return a = a + b; }
inline Var& operator-=(Var& a, const Var& b) { return a = a - b; }
inline Var& operator*=(Var& a, const Var& b) { return a = a * b; }
inline Var& operator/=(Var& a, const Var& b) { return a = a / b; }
inline Var& operator+=(Var& a, double c) { return a = a + c; }
inline Var& operator-=(Var& a, double c) { return a = a - c; }
inline Var& operator*=(Var& a, double c) { return a = a * c; }
inline Var& operator/=(Var& a, double c) { return a = a / c; }

// ---- comparisons (forward values; branching is fine, as in any AD tracer) --

inline bool operator<(const Var& a, const Var& b) { return a.value() < b.value(); }
inline bool operator>(const Var& a, const Var& b) { return a.value() > b.value(); }
inline bool operator<(const Var& a, double c) { return a.value() < c; }
inline bool operator>(const Var& a, double c) { return a.value() > c; }
inline bool operator<(double c, const Var& a) { return c < a.value(); }
inline bool operator>(double c, const Var& a) { return c > a.value(); }

// ---- math functions ----

inline Var exp(const Var& a) {
  const double e = std::exp(a.value());
  return a.tape()->node1(e, a.index(), e);
}

inline Var log(const Var& a) {
  return a.tape()->node1(std::log(a.value()), a.index(), 1.0 / a.value());
}

inline Var sqrt(const Var& a) {
  const double s = std::sqrt(a.value());
  return a.tape()->node1(s, a.index(), 0.5 / s);
}

inline Var sin(const Var& a) {
  return a.tape()->node1(std::sin(a.value()), a.index(), std::cos(a.value()));
}

inline Var cos(const Var& a) {
  return a.tape()->node1(std::cos(a.value()), a.index(), -std::sin(a.value()));
}

inline Var tan(const Var& a) {
  const double t = std::tan(a.value());
  return a.tape()->node1(t, a.index(), 1.0 + t * t);
}

inline Var tanh(const Var& a) {
  const double t = std::tanh(a.value());
  return a.tape()->node1(t, a.index(), 1.0 - t * t);
}

inline Var sinh(const Var& a) {
  return a.tape()->node1(std::sinh(a.value()), a.index(), std::cosh(a.value()));
}

inline Var cosh(const Var& a) {
  return a.tape()->node1(std::cosh(a.value()), a.index(), std::sinh(a.value()));
}

/// pow with a constant exponent; handles r^3-style polyharmonic kernels.
inline Var pow(const Var& a, double p) {
  const double v = std::pow(a.value(), p);
  return a.tape()->node1(v, a.index(), p * std::pow(a.value(), p - 1.0));
}

inline Var pow(const Var& a, const Var& b) {
  Tape& t = detail::same_tape(a, b);
  const double v = std::pow(a.value(), b.value());
  return t.node2(v, a.index(), b.value() * std::pow(a.value(), b.value() - 1.0),
                 b.index(), v * std::log(a.value()));
}

/// |x| with subgradient sign(x) at 0 (matches JAX's convention of 0 there
/// except we pick 0 too).
inline Var abs(const Var& a) {
  const double v = a.value();
  const double s = v > 0.0 ? 1.0 : (v < 0.0 ? -1.0 : 0.0);
  return a.tape()->node1(std::abs(v), a.index(), s);
}

inline Var max(const Var& a, double c) {
  return a.value() >= c ? a : a.tape()->node1(c, a.index(), 0.0);
}

inline Var min(const Var& a, double c) {
  return a.value() <= c ? a : a.tape()->node1(c, a.index(), 0.0);
}

inline Var square(const Var& a) { return a * a; }

/// Detach: value flows, gradient does not (JAX's stop_gradient).
inline Var stop_gradient(const Var& a) {
  return a.tape()->variable(a.value());
}

// ---- helpers so generic code can treat double and Var uniformly ----

inline double value_of(double x) { return x; }
inline double value_of(const Var& x) { return x.value(); }

}  // namespace updec::ad
