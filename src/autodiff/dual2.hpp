#pragma once
/// \file dual2.hpp
/// Second-order forward-mode scalars in two spatial dimensions.
///
/// A Dual2 carries (v, v_x, v_y, v_xx, v_xy, v_yy): the 2-D second-order
/// Taylor data needed by PINN residuals (Laplacians, advection terms).
/// Instantiated with T = ad::Var, every coefficient lives on the reverse
/// tape, so a single backward sweep after forming the residual loss yields
/// exact dLoss/dtheta -- forward-over-reverse, exactly what
/// jax.grad(loss)(theta) with jax.hessian-style residuals computes for the
/// paper's PINNs.

#include <cmath>

#include "autodiff/var_math.hpp"

namespace updec::ad {

template <typename T>
struct Dual2 {
  T v;             ///< value
  T gx, gy;        ///< gradient w.r.t. the two seeded inputs
  T hxx, hxy, hyy; ///< upper triangle of the Hessian

  Dual2() = default;
  Dual2(T v_, T gx_, T gy_, T hxx_, T hxy_, T hyy_)
      : v(std::move(v_)),
        gx(std::move(gx_)),
        gy(std::move(gy_)),
        hxx(std::move(hxx_)),
        hxy(std::move(hxy_)),
        hyy(std::move(hyy_)) {}
};

/// Seeds for the plain double case (Var seeds are built by callers that own
/// a tape, using tape.constant(...) for the zero/one channels).
inline Dual2<double> dual2_x(double x) { return {x, 1.0, 0.0, 0.0, 0.0, 0.0}; }
inline Dual2<double> dual2_y(double y) { return {y, 0.0, 1.0, 0.0, 0.0, 0.0}; }
inline Dual2<double> dual2_constant(double c) {
  return {c, 0.0, 0.0, 0.0, 0.0, 0.0};
}

// ---- arithmetic ----

template <typename T>
Dual2<T> operator+(const Dual2<T>& a, const Dual2<T>& b) {
  return {a.v + b.v,     a.gx + b.gx,   a.gy + b.gy,
          a.hxx + b.hxx, a.hxy + b.hxy, a.hyy + b.hyy};
}

template <typename T>
Dual2<T> operator-(const Dual2<T>& a, const Dual2<T>& b) {
  return {a.v - b.v,     a.gx - b.gx,   a.gy - b.gy,
          a.hxx - b.hxx, a.hxy - b.hxy, a.hyy - b.hyy};
}

template <typename T>
Dual2<T> operator*(const Dual2<T>& a, const Dual2<T>& b) {
  return {a.v * b.v,
          a.gx * b.v + a.v * b.gx,
          a.gy * b.v + a.v * b.gy,
          a.hxx * b.v + 2.0 * (a.gx * b.gx) + a.v * b.hxx,
          a.hxy * b.v + a.gx * b.gy + a.gy * b.gx + a.v * b.hxy,
          a.hyy * b.v + 2.0 * (a.gy * b.gy) + a.v * b.hyy};
}

template <typename T>
Dual2<T> operator-(const Dual2<T>& a) {
  return {-a.v, -a.gx, -a.gy, -a.hxx, -a.hxy, -a.hyy};
}

template <typename T>
Dual2<T> operator+(const Dual2<T>& a, double c) {
  return {a.v + c, a.gx, a.gy, a.hxx, a.hxy, a.hyy};
}
template <typename T>
Dual2<T> operator+(double c, const Dual2<T>& a) {
  return a + c;
}
template <typename T>
Dual2<T> operator-(const Dual2<T>& a, double c) {
  return {a.v - c, a.gx, a.gy, a.hxx, a.hxy, a.hyy};
}
template <typename T>
Dual2<T> operator-(double c, const Dual2<T>& a) {
  return {c - a.v, -a.gx, -a.gy, -a.hxx, -a.hxy, -a.hyy};
}
template <typename T>
Dual2<T> operator*(const Dual2<T>& a, double c) {
  return {a.v * c, a.gx * c, a.gy * c, a.hxx * c, a.hxy * c, a.hyy * c};
}
template <typename T>
Dual2<T> operator*(double c, const Dual2<T>& a) {
  return a * c;
}
template <typename T>
Dual2<T> operator/(const Dual2<T>& a, double c) {
  return a * (1.0 / c);
}

namespace detail {
/// Chain rule for a unary f with derivatives f1 = f'(a.v), f2 = f''(a.v):
///   g_i  = f1 * a.g_i
///   h_ij = f1 * a.h_ij + f2 * a.g_i * a.g_j
template <typename T>
Dual2<T> unary_chain(const Dual2<T>& a, T f, T f1, T f2) {
  return {std::move(f),
          f1 * a.gx,
          f1 * a.gy,
          f1 * a.hxx + f2 * (a.gx * a.gx),
          f1 * a.hxy + f2 * (a.gx * a.gy),
          f1 * a.hyy + f2 * (a.gy * a.gy)};
}
}  // namespace detail

// ---- math functions ----

template <typename T>
Dual2<T> tanh(const Dual2<T>& a) {
  using std::tanh;
  const T t = tanh(a.v);
  const T f1 = 1.0 - t * t;
  const T f2 = -2.0 * (t * f1);
  return detail::unary_chain(a, t, f1, f2);
}

template <typename T>
Dual2<T> exp(const Dual2<T>& a) {
  using std::exp;
  const T e = exp(a.v);
  return detail::unary_chain(a, e, e, e);
}

template <typename T>
Dual2<T> sin(const Dual2<T>& a) {
  using std::cos;
  using std::sin;
  const T s = sin(a.v);
  const T c = cos(a.v);
  return detail::unary_chain(a, s, c, -s);
}

template <typename T>
Dual2<T> cos(const Dual2<T>& a) {
  using std::cos;
  using std::sin;
  const T c = cos(a.v);
  const T s = sin(a.v);
  return detail::unary_chain(a, c, -s, -c);
}

template <typename T>
Dual2<T> sqrt(const Dual2<T>& a) {
  using std::sqrt;
  const T s = sqrt(a.v);
  const T f1 = 0.5 / s;
  const T f2 = -0.5 * (f1 / a.v);
  return detail::unary_chain(a, s, f1, f2);
}

/// Reciprocal (building block of division).
template <typename T>
Dual2<T> recip(const Dual2<T>& a) {
  const T inv = 1.0 / a.v;
  const T f1 = -1.0 * (inv * inv);
  const T f2 = -2.0 * (f1 * inv);
  return detail::unary_chain(a, inv, f1, f2);
}

template <typename T>
Dual2<T> operator/(const Dual2<T>& a, const Dual2<T>& b) {
  return a * recip(b);
}
template <typename T>
Dual2<T> operator/(double c, const Dual2<T>& a) {
  return recip(a) * c;
}

template <typename T>
Dual2<T> square(const Dual2<T>& a) {
  return a * a;
}

}  // namespace updec::ad
