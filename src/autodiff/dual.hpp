#pragma once
/// \file dual.hpp
/// First-order forward-mode dual numbers, templated over the scalar type.
///
/// The paper defines the RBF differential operator D by applying JAX's
/// `grad` to the kernel phi (section 2.4): users may pick any phi and get
/// exact derivatives without deriving them symbolically. `Dual<T>` plays
/// the same role here: evaluating phi on duals yields phi and phi' in one
/// pass, and nesting `Dual<Dual<T>>` yields second derivatives.

#include <cmath>

#include "autodiff/var_math.hpp"

namespace updec::ad {

/// Dual number: value + one derivative channel.
template <typename T>
struct Dual {
  T v;  ///< value
  T d;  ///< derivative w.r.t. the seeded input

  Dual() = default;
  Dual(T value, T deriv) : v(std::move(value)), d(std::move(deriv)) {}
};

/// Seed helpers for the common double case.
inline Dual<double> dual_input(double v) { return {v, 1.0}; }
inline Dual<double> dual_constant(double v) { return {v, 0.0}; }

// ---- arithmetic ----

template <typename T>
Dual<T> operator+(const Dual<T>& a, const Dual<T>& b) {
  return {a.v + b.v, a.d + b.d};
}
template <typename T>
Dual<T> operator-(const Dual<T>& a, const Dual<T>& b) {
  return {a.v - b.v, a.d - b.d};
}
template <typename T>
Dual<T> operator*(const Dual<T>& a, const Dual<T>& b) {
  return {a.v * b.v, a.d * b.v + a.v * b.d};
}
template <typename T>
Dual<T> operator/(const Dual<T>& a, const Dual<T>& b) {
  const T inv_bv = 1.0 / b.v;
  return {a.v * inv_bv, (a.d - a.v * inv_bv * b.d) * inv_bv};
}
template <typename T>
Dual<T> operator-(const Dual<T>& a) {
  return {-a.v, -a.d};
}

template <typename T>
Dual<T> operator+(const Dual<T>& a, double c) {
  return {a.v + c, a.d};
}
template <typename T>
Dual<T> operator+(double c, const Dual<T>& a) {
  return a + c;
}
template <typename T>
Dual<T> operator-(const Dual<T>& a, double c) {
  return {a.v - c, a.d};
}
template <typename T>
Dual<T> operator-(double c, const Dual<T>& a) {
  return {c - a.v, -a.d};
}
template <typename T>
Dual<T> operator*(const Dual<T>& a, double c) {
  return {a.v * c, a.d * c};
}
template <typename T>
Dual<T> operator*(double c, const Dual<T>& a) {
  return a * c;
}
template <typename T>
Dual<T> operator/(const Dual<T>& a, double c) {
  return a * (1.0 / c);
}
template <typename T>
Dual<T> operator/(double c, const Dual<T>& b) {
  const T inv = 1.0 / b.v;  // recurses for nested duals
  return {c * inv, -1.0 * c * (inv * inv) * b.d};
}

// ---- math functions (use std:: for double, ADL for Var) ----

template <typename T>
Dual<T> sqrt(const Dual<T>& a) {
  using std::sqrt;
  const T s = sqrt(a.v);
  return {s, a.d * (0.5 / s)};
}

template <typename T>
Dual<T> exp(const Dual<T>& a) {
  using std::exp;
  const T e = exp(a.v);
  return {e, a.d * e};
}

template <typename T>
Dual<T> log(const Dual<T>& a) {
  using std::log;
  return {log(a.v), a.d / a.v};
}

template <typename T>
Dual<T> sin(const Dual<T>& a) {
  using std::cos;
  using std::sin;
  return {sin(a.v), a.d * cos(a.v)};
}

template <typename T>
Dual<T> cos(const Dual<T>& a) {
  using std::cos;
  using std::sin;
  return {cos(a.v), a.d * (-1.0) * sin(a.v)};
}

template <typename T>
Dual<T> tanh(const Dual<T>& a) {
  using std::tanh;
  const T t = tanh(a.v);
  return {t, a.d * (1.0 - t * t)};
}

template <typename T>
Dual<T> pow(const Dual<T>& a, double p) {
  using std::pow;
  return {pow(a.v, p), a.d * (p * pow(a.v, p - 1.0))};
}

}  // namespace updec::ad
