#pragma once
/// \file tape.hpp
/// Reverse-mode automatic differentiation on a Wengert tape.
///
/// This is the substrate of the paper's differentiable-programming (DP)
/// strategy: every elementary operation of the discretised RBF solver is
/// recorded as a node, and one reverse sweep yields the exact gradient of
/// the cost objective with respect to the control (the "discretise-then-
/// optimise" approach of section 2.4). The tape mirrors what JAX's `grad`
/// does for the original Updec implementation, including custom vector-
/// valued operations with hand-written VJPs (see ops.hpp) that keep linear
/// solves O(n) on the tape instead of O(n^2).
///
/// Storage is structure-of-arrays: each scalar node carries a value, up to
/// two parent indices and the local partial derivatives with respect to
/// those parents. Custom multi-output operations (SpMV, linear solve, ...)
/// register a backward callback that fires at the right position of the
/// reverse sweep.

#include <cstdint>
#include <functional>
#include <vector>

#include "util/error.hpp"

namespace updec::ad {

class Tape;

/// Handle to a scalar node on a tape. Cheap to copy; only valid while the
/// owning tape is alive and has not been cleared past the node.
class Var {
 public:
  Var() = default;
  Var(Tape* tape, std::int64_t idx) : tape_(tape), idx_(idx) {}

  [[nodiscard]] bool valid() const { return tape_ != nullptr; }
  [[nodiscard]] Tape* tape() const { return tape_; }
  [[nodiscard]] std::int64_t index() const { return idx_; }

  /// Forward value of this node.
  [[nodiscard]] double value() const;

  /// Adjoint of this node after Tape::backward().
  [[nodiscard]] double adjoint() const;

 private:
  Tape* tape_ = nullptr;
  std::int64_t idx_ = -1;
};

/// Wengert tape holding the computation graph of one forward pass.
class Tape {
 public:
  Tape() = default;
  Tape(const Tape&) = delete;
  Tape& operator=(const Tape&) = delete;

  /// Create a differentiable input (leaf) node.
  Var variable(double value);

  /// Create a constant node (leaf; gradient flows stop here by definition
  /// since nothing upstream depends on it).
  Var constant(double value) { return variable(value); }

  /// Record a node with one parent.
  Var node1(double value, std::int64_t parent, double partial);

  /// Record a node with two parents.
  Var node2(double value, std::int64_t pa, double wa, std::int64_t pb,
            double wb);

  /// Backward callback of a custom op: receives the tape (adjoints are live)
  /// and the index of the op's first output node.
  using CustomBackward = std::function<void(Tape&, std::int64_t out_start)>;

  /// Register a custom multi-output operation. `out_count` fresh leaf nodes
  /// are allocated (initialised with `out_values`); `backward` runs during
  /// the reverse sweep once all downstream adjoints have been accumulated,
  /// and must scatter the outputs' adjoints onto the operation's inputs via
  /// adjoint_ref(). Returns the index of the first output node.
  std::int64_t custom_op(const std::vector<double>& out_values,
                         CustomBackward backward);

  /// Seed `root` with adjoint 1 and run the reverse sweep. May be called
  /// once per forward pass; call clear()/rewind() before reusing the tape.
  void backward(const Var& root);

  /// Value / adjoint accessors by node index.
  [[nodiscard]] double value(std::int64_t idx) const {
    UPDEC_ASSERT(idx >= 0 && static_cast<std::size_t>(idx) < val_.size());
    return val_[static_cast<std::size_t>(idx)];
  }
  [[nodiscard]] double adjoint(std::int64_t idx) const {
    UPDEC_REQUIRE(!adj_.empty(), "adjoint() before backward()");
    UPDEC_ASSERT(idx >= 0 && static_cast<std::size_t>(idx) < adj_.size());
    return adj_[static_cast<std::size_t>(idx)];
  }
  /// Mutable adjoint accumulator (for custom-op backward callbacks).
  double& adjoint_ref(std::int64_t idx) {
    UPDEC_ASSERT(idx >= 0 && static_cast<std::size_t>(idx) < adj_.size());
    return adj_[static_cast<std::size_t>(idx)];
  }

  /// Number of scalar nodes currently on the tape.
  [[nodiscard]] std::size_t size() const { return val_.size(); }

  /// Approximate tape memory footprint in bytes (Table 3 "Peak mem." probe).
  [[nodiscard]] std::size_t memory_bytes() const;

  /// Forget everything (keeps capacity for reuse across iterations).
  void clear();

  /// Checkpointing: remember the current size...
  [[nodiscard]] std::size_t mark() const { return val_.size(); }
  /// ...and drop every node recorded after `mark`. Vars taken after the
  /// mark become invalid. Custom ops recorded after the mark are dropped too.
  void rewind(std::size_t mark);

  /// Reserve capacity (avoids reallocation churn in long rollouts).
  void reserve(std::size_t nodes);

 private:
  struct CustomOp {
    std::int64_t out_start = 0;
    std::int64_t out_count = 0;
    CustomBackward backward;
  };

  std::vector<double> val_;
  std::vector<double> adj_;
  std::vector<std::int64_t> pa_, pb_;  // parent indices, -1 = none
  std::vector<double> wa_, wb_;        // local partials
  std::vector<CustomOp> custom_;
};

inline double Var::value() const {
  UPDEC_REQUIRE(tape_ != nullptr, "value() on null Var");
  return tape_->value(idx_);
}

inline double Var::adjoint() const {
  UPDEC_REQUIRE(tape_ != nullptr, "adjoint() on null Var");
  return tape_->adjoint(idx_);
}

}  // namespace updec::ad
