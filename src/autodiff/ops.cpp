#include "autodiff/ops.hpp"

#include "la/blas.hpp"

namespace updec::ad {

namespace {

Tape& tape_of(const VarVec& v) {
  UPDEC_REQUIRE(!v.empty(), "empty VarVec has no tape");
  UPDEC_REQUIRE(v.front().valid(), "VarVec holds null Vars");
  return *v.front().tape();
}

std::vector<std::int64_t> indices_of(const VarVec& v) {
  std::vector<std::int64_t> idx(v.size());
  for (std::size_t i = 0; i < v.size(); ++i) idx[i] = v[i].index();
  return idx;
}

VarVec wrap_outputs(Tape& tape, std::int64_t start, std::size_t count) {
  VarVec out(count);
  for (std::size_t i = 0; i < count; ++i)
    out[i] = Var(&tape, start + static_cast<std::int64_t>(i));
  return out;
}

}  // namespace

VarVec make_variables(Tape& tape, const la::Vector& values) {
  VarVec v(values.size());
  for (std::size_t i = 0; i < values.size(); ++i)
    v[i] = tape.variable(values[i]);
  return v;
}

VarVec make_constants(Tape& tape, const la::Vector& values) {
  return make_variables(tape, values);
}

la::Vector values(const VarVec& v) {
  la::Vector out(v.size());
  for (std::size_t i = 0; i < v.size(); ++i) out[i] = v[i].value();
  return out;
}

la::Vector adjoints(const VarVec& v) {
  la::Vector out(v.size());
  for (std::size_t i = 0; i < v.size(); ++i) out[i] = v[i].adjoint();
  return out;
}

VarVec stop_gradient(const VarVec& v) {
  VarVec out(v.size());
  for (std::size_t i = 0; i < v.size(); ++i) out[i] = stop_gradient(v[i]);
  return out;
}

Var sum(const VarVec& v) {
  Tape& tape = tape_of(v);
  double total = 0.0;
  for (const Var& x : v) total += x.value();
  const std::int64_t start = tape.custom_op(
      {total}, [idx = indices_of(v)](Tape& t, std::int64_t out) {
        const double ybar = t.adjoint(out);
        if (ybar == 0.0) return;
        for (const std::int64_t i : idx) t.adjoint_ref(i) += ybar;
      });
  return {&tape, start};
}

Var dot(const VarVec& a, const VarVec& b) {
  UPDEC_REQUIRE(a.size() == b.size(), "dot size mismatch");
  Tape& tape = tape_of(a);
  double total = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i)
    total += a[i].value() * b[i].value();
  const std::int64_t start = tape.custom_op(
      {total}, [ia = indices_of(a), ib = indices_of(b), va = values(a),
                vb = values(b)](Tape& t, std::int64_t out) {
        const double ybar = t.adjoint(out);
        if (ybar == 0.0) return;
        for (std::size_t i = 0; i < ia.size(); ++i) {
          t.adjoint_ref(ia[i]) += ybar * vb[i];
          t.adjoint_ref(ib[i]) += ybar * va[i];
        }
      });
  return {&tape, start};
}

Var dot(const VarVec& a, const la::Vector& w) {
  UPDEC_REQUIRE(a.size() == w.size(), "dot size mismatch");
  Tape& tape = tape_of(a);
  double total = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) total += a[i].value() * w[i];
  const std::int64_t start = tape.custom_op(
      {total}, [ia = indices_of(a), w](Tape& t, std::int64_t out) {
        const double ybar = t.adjoint(out);
        if (ybar == 0.0) return;
        for (std::size_t i = 0; i < ia.size(); ++i)
          t.adjoint_ref(ia[i]) += ybar * w[i];
      });
  return {&tape, start};
}

VarVec spmv(const la::CsrMatrix& a, const VarVec& x) {
  UPDEC_REQUIRE(a.cols() == x.size(), "spmv size mismatch");
  Tape& tape = tape_of(x);
  const la::Vector xv = values(x);
  const la::Vector yv = a.apply(xv);
  const std::int64_t start = tape.custom_op(
      yv.std(), [&a, ix = indices_of(x)](Tape& t, std::int64_t out) {
        // x_bar += A^T y_bar
        la::Vector ybar(a.rows());
        for (std::size_t i = 0; i < a.rows(); ++i)
          ybar[i] = t.adjoint(out + static_cast<std::int64_t>(i));
        const la::Vector xbar = a.apply_transpose(ybar);
        for (std::size_t j = 0; j < ix.size(); ++j)
          t.adjoint_ref(ix[j]) += xbar[j];
      });
  return wrap_outputs(tape, start, a.rows());
}

VarVec gemv(const la::Matrix& a, const VarVec& x) {
  UPDEC_REQUIRE(a.cols() == x.size(), "gemv size mismatch");
  Tape& tape = tape_of(x);
  const la::Vector xv = values(x);
  const la::Vector yv = la::matvec(a, xv);
  const std::int64_t start = tape.custom_op(
      yv.std(), [&a, ix = indices_of(x)](Tape& t, std::int64_t out) {
        la::Vector ybar(a.rows());
        for (std::size_t i = 0; i < a.rows(); ++i)
          ybar[i] = t.adjoint(out + static_cast<std::int64_t>(i));
        const la::Vector xbar = la::matvec_t(a, ybar);
        for (std::size_t j = 0; j < ix.size(); ++j)
          t.adjoint_ref(ix[j]) += xbar[j];
      });
  return wrap_outputs(tape, start, a.rows());
}

VarVec solve(const la::LuFactorization& lu, const VarVec& b) {
  UPDEC_REQUIRE(lu.size() == b.size(), "solve size mismatch");
  Tape& tape = tape_of(b);
  const la::Vector bv = values(b);
  const la::Vector xv = lu.solve(bv);
  const std::int64_t start = tape.custom_op(
      xv.std(), [&lu, ib = indices_of(b)](Tape& t, std::int64_t out) {
        // b_bar += A^{-T} x_bar
        la::Vector xbar(lu.size());
        for (std::size_t i = 0; i < lu.size(); ++i)
          xbar[i] = t.adjoint(out + static_cast<std::int64_t>(i));
        const la::Vector bbar = lu.solve_transpose(xbar);
        for (std::size_t i = 0; i < ib.size(); ++i)
          t.adjoint_ref(ib[i]) += bbar[i];
      });
  return wrap_outputs(tape, start, b.size());
}

VarVec solve(const la::SparseFirstSolver& op, const VarVec& b) {
  UPDEC_REQUIRE(op.size() == b.size(), "solve size mismatch");
  Tape& tape = tape_of(b);
  const la::Vector bv = values(b);
  const la::Vector xv = op.solve(bv);
  const std::int64_t start = tape.custom_op(
      xv.std(), [&op, ib = indices_of(b)](Tape& t, std::int64_t out) {
        // b_bar += A^{-T} x_bar
        la::Vector xbar(op.size());
        for (std::size_t i = 0; i < op.size(); ++i)
          xbar[i] = t.adjoint(out + static_cast<std::int64_t>(i));
        const la::Vector bbar = op.solve_transpose(xbar);
        for (std::size_t i = 0; i < ib.size(); ++i)
          t.adjoint_ref(ib[i]) += bbar[i];
      });
  return wrap_outputs(tape, start, b.size());
}

VarVec solve(const VarVec& a_flat, const VarVec& b) {
  const std::size_t n = b.size();
  UPDEC_REQUIRE(a_flat.size() == n * n, "solve expects n*n matrix entries");
  Tape& tape = tape_of(b);
  la::Matrix a(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) a(i, j) = a_flat[i * n + j].value();
  auto lu = std::make_shared<la::LuFactorization>(std::move(a));
  const la::Vector xv = lu->solve(values(b));
  const std::int64_t start = tape.custom_op(
      xv.std(), [lu, ia = indices_of(a_flat), ib = indices_of(b),
                 xv](Tape& t, std::int64_t out) {
        const std::size_t m = ib.size();
        la::Vector xbar(m);
        for (std::size_t i = 0; i < m; ++i)
          xbar[i] = t.adjoint(out + static_cast<std::int64_t>(i));
        const la::Vector lambda = lu->solve_transpose(xbar);
        for (std::size_t i = 0; i < m; ++i) {
          t.adjoint_ref(ib[i]) += lambda[i];
          // A_bar = -lambda x^T
          for (std::size_t j = 0; j < m; ++j)
            t.adjoint_ref(ia[i * m + j]) -= lambda[i] * xv[j];
        }
      });
  return wrap_outputs(tape, start, n);
}

VarVec add(const VarVec& a, const VarVec& b) {
  UPDEC_REQUIRE(a.size() == b.size(), "add size mismatch");
  VarVec out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] + b[i];
  return out;
}

VarVec sub(const VarVec& a, const VarVec& b) {
  UPDEC_REQUIRE(a.size() == b.size(), "sub size mismatch");
  VarVec out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] - b[i];
  return out;
}

VarVec hadamard(const VarVec& a, const VarVec& b) {
  UPDEC_REQUIRE(a.size() == b.size(), "hadamard size mismatch");
  VarVec out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] * b[i];
  return out;
}

VarVec scale(double s, const VarVec& a) {
  VarVec out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] * s;
  return out;
}

VarVec add_scaled(const VarVec& a, double s, const VarVec& b) {
  UPDEC_REQUIRE(a.size() == b.size(), "add_scaled size mismatch");
  VarVec out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i)
    out[i] = a[i].tape()->node2(a[i].value() + s * b[i].value(), a[i].index(),
                                1.0, b[i].index(), s);
  return out;
}

}  // namespace updec::ad
