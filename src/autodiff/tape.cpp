#include "autodiff/tape.hpp"

#include "util/metrics.hpp"
#include "util/trace.hpp"

namespace updec::ad {

Var Tape::variable(double value) {
  val_.push_back(value);
  pa_.push_back(-1);
  pb_.push_back(-1);
  wa_.push_back(0.0);
  wb_.push_back(0.0);
  return {this, static_cast<std::int64_t>(val_.size()) - 1};
}

Var Tape::node1(double value, std::int64_t parent, double partial) {
  UPDEC_ASSERT(parent >= 0 &&
               static_cast<std::size_t>(parent) < val_.size());
  val_.push_back(value);
  pa_.push_back(parent);
  pb_.push_back(-1);
  wa_.push_back(partial);
  wb_.push_back(0.0);
  return {this, static_cast<std::int64_t>(val_.size()) - 1};
}

Var Tape::node2(double value, std::int64_t pa, double wa, std::int64_t pb,
                double wb) {
  UPDEC_ASSERT(pa >= 0 && static_cast<std::size_t>(pa) < val_.size());
  UPDEC_ASSERT(pb >= 0 && static_cast<std::size_t>(pb) < val_.size());
  val_.push_back(value);
  pa_.push_back(pa);
  pb_.push_back(pb);
  wa_.push_back(wa);
  wb_.push_back(wb);
  return {this, static_cast<std::int64_t>(val_.size()) - 1};
}

std::int64_t Tape::custom_op(const std::vector<double>& out_values,
                             CustomBackward backward) {
  const auto start = static_cast<std::int64_t>(val_.size());
  for (const double v : out_values) (void)variable(v);
  custom_.push_back(
      {start, static_cast<std::int64_t>(out_values.size()), std::move(backward)});
  return start;
}

void Tape::backward(const Var& root) {
  UPDEC_TRACE_SCOPE("autodiff/backward");
  UPDEC_REQUIRE(root.tape() == this, "backward() root from another tape");
  const std::size_t n = val_.size();
  UPDEC_METRIC_ADD("autodiff/tape.backward_passes", 1);
  UPDEC_METRIC_ADD("autodiff/tape.nodes_swept", n);
  adj_.assign(n, 0.0);
  adj_[static_cast<std::size_t>(root.index())] = 1.0;

  // Reverse sweep. Custom ops fire exactly when the sweep reaches the first
  // node of their output block: every downstream consumer has then been
  // processed (larger indices), and all their inputs (smaller indices) are
  // still pending.
  std::int64_t next_custom = static_cast<std::int64_t>(custom_.size()) - 1;
  for (std::int64_t i = static_cast<std::int64_t>(n) - 1; i >= 0; --i) {
    const auto ui = static_cast<std::size_t>(i);
    const double a = adj_[ui];
    if (a != 0.0) {
      if (pa_[ui] >= 0) adj_[static_cast<std::size_t>(pa_[ui])] += wa_[ui] * a;
      if (pb_[ui] >= 0) adj_[static_cast<std::size_t>(pb_[ui])] += wb_[ui] * a;
    }
    while (next_custom >= 0 &&
           custom_[static_cast<std::size_t>(next_custom)].out_start == i) {
      const auto& op = custom_[static_cast<std::size_t>(next_custom)];
      op.backward(*this, op.out_start);
      --next_custom;
    }
  }
  // Peak accounting after the sweep, when the adjoint array is live too.
  UPDEC_METRIC_GAUGE_MAX("autodiff/tape.peak_nodes", static_cast<double>(n));
  UPDEC_METRIC_GAUGE_MAX("autodiff/tape.peak_bytes",
                         static_cast<double>(memory_bytes()));
}

std::size_t Tape::memory_bytes() const {
  return val_.size() * (3 * sizeof(double) + 2 * sizeof(std::int64_t)) +
         adj_.size() * sizeof(double) + custom_.size() * sizeof(CustomOp);
}

void Tape::clear() {
  val_.clear();
  adj_.clear();
  pa_.clear();
  pb_.clear();
  wa_.clear();
  wb_.clear();
  custom_.clear();
}

void Tape::rewind(std::size_t mark) {
  UPDEC_REQUIRE(mark <= val_.size(), "rewind past end of tape");
  val_.resize(mark);
  pa_.resize(mark);
  pb_.resize(mark);
  wa_.resize(mark);
  wb_.resize(mark);
  adj_.clear();
  while (!custom_.empty() &&
         static_cast<std::size_t>(custom_.back().out_start) >= mark)
    custom_.pop_back();
}

void Tape::reserve(std::size_t nodes) {
  val_.reserve(nodes);
  pa_.reserve(nodes);
  pb_.reserve(nodes);
  wa_.reserve(nodes);
  wb_.reserve(nodes);
}

}  // namespace updec::ad
