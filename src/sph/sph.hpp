#pragma once
/// \file sph.hpp
/// Weakly-compressible Smoothed Particle Hydrodynamics in a periodic 2-D
/// box -- the paper's named future-work alternative to RBFs ("exploring
/// alternative mesh-free methods like Smoothed Particle Hydrodynamics",
/// section 5; footnote 3 highlights its Lagrangian nature).
///
/// Standard WCSPH: cubic-spline kernel, density by summation, Tait
/// equation of state, Morris laminar viscosity, symplectic-Euler time
/// integration, cell-list neighbour search with periodic wrapping.

#include <cstddef>
#include <vector>

#include "util/error.hpp"

namespace updec::sph {

/// Particle arrays (structure-of-arrays for cache-friendly sweeps).
struct Particles {
  std::vector<double> x, y;    ///< positions in [0, L)^2
  std::vector<double> vx, vy;  ///< velocities
  std::vector<double> rho;     ///< densities
  std::vector<double> p;       ///< pressures
  std::vector<double> m;       ///< masses

  [[nodiscard]] std::size_t size() const { return x.size(); }
  void resize(std::size_t n);
};

/// 2-D cubic-spline (M4) kernel with support radius 2h.
class CubicSplineKernel {
 public:
  explicit CubicSplineKernel(double h);

  [[nodiscard]] double h() const { return h_; }
  [[nodiscard]] double support() const { return 2.0 * h_; }

  /// W(r).
  [[nodiscard]] double w(double r) const;
  /// dW/dr (radial derivative; the gradient is dW/dr * (dx, dy)/r).
  [[nodiscard]] double dw(double r) const;

 private:
  double h_;
  double sigma_;  // 2-D normalisation 10 / (7 pi h^2)
};

struct SphConfig {
  double box = 1.0;       ///< periodic box edge L
  double h = 0.0;         ///< smoothing length (0: auto = 1.3 * spacing)
  double rho0 = 1.0;      ///< reference density
  double c0 = 10.0;       ///< artificial sound speed (>= 10 * max |u|)
  double nu = 0.02;       ///< kinematic viscosity
  double gamma = 7.0;     ///< Tait exponent
  double dt = 0.0;        ///< time step (0: auto from the CFL-like bound)
};

/// WCSPH stepper over a periodic box.
class SphSolver {
 public:
  /// \param spacing initial lattice spacing (sets the auto h and dt).
  SphSolver(const SphConfig& config, double spacing);

  /// Advance one step: density summation -> EOS -> forces -> symplectic
  /// Euler -> periodic wrap.
  void step(Particles& particles) const;

  /// March n steps.
  void advance(Particles& particles, std::size_t steps) const;

  /// Total kinetic energy 1/2 sum m |v|^2.
  [[nodiscard]] static double kinetic_energy(const Particles& particles);

  /// Total linear momentum (px, py).
  [[nodiscard]] static std::pair<double, double> momentum(
      const Particles& particles);

  [[nodiscard]] const SphConfig& config() const { return config_; }
  [[nodiscard]] const CubicSplineKernel& kernel() const { return kernel_; }
  [[nodiscard]] double dt() const { return dt_; }

  /// Recompute densities and pressures of the current configuration
  /// (exposed for tests and diagnostics).
  void update_density_pressure(Particles& particles) const;

 private:
  /// Cell-list neighbour loop: calls f(i, j, dx, dy, r) for every pair with
  /// r < support (j != i), with periodic minimum-image offsets.
  template <typename F>
  void for_neighbours(const Particles& particles, F&& f) const;

  SphConfig config_;
  CubicSplineKernel kernel_;
  double dt_;
};

/// Regular n x n lattice filling the box with total mass rho0 * L^2.
Particles make_lattice(std::size_t n, const SphConfig& config);

/// Impose the Taylor-Green velocity field u = U sin(kx) cos(ky),
/// v = -U cos(kx) sin(ky) with k = 2 pi / L (divergence-free, decays as
/// exp(-2 nu k^2 t) in the incompressible limit).
void set_taylor_green(Particles& particles, double box, double amplitude);

}  // namespace updec::sph
