#include "sph/sph.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

namespace updec::sph {

void Particles::resize(std::size_t n) {
  x.resize(n);
  y.resize(n);
  vx.resize(n);
  vy.resize(n);
  rho.resize(n);
  p.resize(n);
  m.resize(n);
}

CubicSplineKernel::CubicSplineKernel(double h) : h_(h) {
  UPDEC_REQUIRE(h > 0.0, "smoothing length must be positive");
  sigma_ = 10.0 / (7.0 * std::numbers::pi * h * h);
}

double CubicSplineKernel::w(double r) const {
  const double q = r / h_;
  if (q >= 2.0) return 0.0;
  if (q < 1.0) return sigma_ * (1.0 - 1.5 * q * q * (1.0 - 0.5 * q));
  const double two_minus_q = 2.0 - q;
  return sigma_ * 0.25 * two_minus_q * two_minus_q * two_minus_q;
}

double CubicSplineKernel::dw(double r) const {
  const double q = r / h_;
  if (q >= 2.0) return 0.0;
  if (q < 1.0) return sigma_ / h_ * (-3.0 * q + 2.25 * q * q);
  const double two_minus_q = 2.0 - q;
  return -sigma_ / h_ * 0.75 * two_minus_q * two_minus_q;
}

SphSolver::SphSolver(const SphConfig& config, double spacing)
    : config_(config),
      kernel_(config.h > 0.0 ? config.h : 1.3 * spacing),
      dt_(config.dt) {
  UPDEC_REQUIRE(spacing > 0.0 && spacing < config.box,
                "spacing must be positive and below the box size");
  UPDEC_REQUIRE(config_.c0 > 0.0 && config_.rho0 > 0.0,
                "sound speed and reference density must be positive");
  if (dt_ <= 0.0) {
    // Acoustic + viscous bound, the usual WCSPH choice.
    const double h = kernel_.h();
    const double dt_acoustic = 0.25 * h / config_.c0;
    const double dt_viscous =
        config_.nu > 0.0 ? 0.125 * h * h / config_.nu : dt_acoustic;
    dt_ = std::min(dt_acoustic, dt_viscous);
  }
}

namespace {
/// Periodic minimum-image difference in [-L/2, L/2).
inline double wrap(double d, double box) {
  if (d > 0.5 * box) return d - box;
  if (d < -0.5 * box) return d + box;
  return d;
}
}  // namespace

template <typename F>
void SphSolver::for_neighbours(const Particles& particles, F&& f) const {
  const double support = kernel_.support();
  const double box = config_.box;
  const auto cells_per_side =
      std::max<std::size_t>(1, static_cast<std::size_t>(box / support));
  const double cell = box / static_cast<double>(cells_per_side);
  const std::size_t n = particles.size();

  // Fewer than 3 cells per side: the 3x3 sweep would revisit cells and
  // double-count pairs -- brute force with minimum image instead.
  if (cells_per_side < 3) {
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        if (j == i) continue;
        const double dx = wrap(particles.x[i] - particles.x[j], box);
        const double dy = wrap(particles.y[i] - particles.y[j], box);
        const double r = std::sqrt(dx * dx + dy * dy);
        if (r < support) f(i, j, dx, dy, r);
      }
    }
    return;
  }

  // Bin particles.
  std::vector<std::vector<std::size_t>> bins(cells_per_side * cells_per_side);
  const auto bin_of = [&](double px, double py) {
    auto cx = static_cast<std::size_t>(px / cell);
    auto cy = static_cast<std::size_t>(py / cell);
    cx = std::min(cx, cells_per_side - 1);
    cy = std::min(cy, cells_per_side - 1);
    return cy * cells_per_side + cx;
  };
  for (std::size_t i = 0; i < n; ++i)
    bins[bin_of(particles.x[i], particles.y[i])].push_back(i);

  // Sweep each particle against its own and neighbouring cells (periodic).
  for (std::size_t i = 0; i < n; ++i) {
    const auto cx = std::min(static_cast<std::size_t>(particles.x[i] / cell),
                             cells_per_side - 1);
    const auto cy = std::min(static_cast<std::size_t>(particles.y[i] / cell),
                             cells_per_side - 1);
    for (int oy = -1; oy <= 1; ++oy) {
      for (int ox = -1; ox <= 1; ++ox) {
        const auto nx = static_cast<std::size_t>(
            (static_cast<std::ptrdiff_t>(cx + cells_per_side) + ox) %
            static_cast<std::ptrdiff_t>(cells_per_side));
        const auto ny = static_cast<std::size_t>(
            (static_cast<std::ptrdiff_t>(cy + cells_per_side) + oy) %
            static_cast<std::ptrdiff_t>(cells_per_side));
        for (const std::size_t j : bins[ny * cells_per_side + nx]) {
          if (j == i) continue;
          const double dx = wrap(particles.x[i] - particles.x[j], box);
          const double dy = wrap(particles.y[i] - particles.y[j], box);
          const double r = std::sqrt(dx * dx + dy * dy);
          if (r < support) f(i, j, dx, dy, r);
        }
      }
    }
  }
}

void SphSolver::update_density_pressure(Particles& particles) const {
  const std::size_t n = particles.size();
  // Self-contribution W(0) included.
  for (std::size_t i = 0; i < n; ++i)
    particles.rho[i] = particles.m[i] * kernel_.w(0.0);
  for_neighbours(particles,
                 [&](std::size_t i, std::size_t j, double, double, double r) {
                   particles.rho[i] += particles.m[j] * kernel_.w(r);
                 });
  // Tait equation of state.
  const double b =
      config_.c0 * config_.c0 * config_.rho0 / config_.gamma;
  for (std::size_t i = 0; i < n; ++i) {
    const double ratio = particles.rho[i] / config_.rho0;
    particles.p[i] = b * (std::pow(ratio, config_.gamma) - 1.0);
  }
}

void SphSolver::step(Particles& particles) const {
  const std::size_t n = particles.size();
  update_density_pressure(particles);

  std::vector<double> ax(n, 0.0), ay(n, 0.0);
  const double eps = 0.01 * kernel_.h() * kernel_.h();
  for_neighbours(particles, [&](std::size_t i, std::size_t j, double dx,
                                double dy, double r) {
    if (r <= 0.0) return;
    const double grad = kernel_.dw(r) / r;  // so grad_i W = grad * (dx, dy)
    // Symmetric pressure term.
    const double pij =
        particles.p[i] / (particles.rho[i] * particles.rho[i]) +
        particles.p[j] / (particles.rho[j] * particles.rho[j]);
    ax[i] -= particles.m[j] * pij * grad * dx;
    ay[i] -= particles.m[j] * pij * grad * dy;
    // Morris laminar viscosity.
    const double mu_i = config_.nu * particles.rho[i];
    const double mu_j = config_.nu * particles.rho[j];
    const double visc = (mu_i + mu_j) /
                        (particles.rho[i] * particles.rho[j]) *
                        (r * kernel_.dw(r)) / (r * r + eps);
    ax[i] += particles.m[j] * visc * (particles.vx[i] - particles.vx[j]);
    ay[i] += particles.m[j] * visc * (particles.vy[i] - particles.vy[j]);
  });

  // Symplectic Euler + periodic wrap.
  const double box = config_.box;
  for (std::size_t i = 0; i < n; ++i) {
    particles.vx[i] += dt_ * ax[i];
    particles.vy[i] += dt_ * ay[i];
    particles.x[i] += dt_ * particles.vx[i];
    particles.y[i] += dt_ * particles.vy[i];
    particles.x[i] -= box * std::floor(particles.x[i] / box);
    particles.y[i] -= box * std::floor(particles.y[i] / box);
  }
}

void SphSolver::advance(Particles& particles, std::size_t steps) const {
  for (std::size_t s = 0; s < steps; ++s) step(particles);
}

double SphSolver::kinetic_energy(const Particles& particles) {
  double e = 0.0;
  for (std::size_t i = 0; i < particles.size(); ++i)
    e += 0.5 * particles.m[i] *
         (particles.vx[i] * particles.vx[i] +
          particles.vy[i] * particles.vy[i]);
  return e;
}

std::pair<double, double> SphSolver::momentum(const Particles& particles) {
  double px = 0.0, py = 0.0;
  for (std::size_t i = 0; i < particles.size(); ++i) {
    px += particles.m[i] * particles.vx[i];
    py += particles.m[i] * particles.vy[i];
  }
  return {px, py};
}

Particles make_lattice(std::size_t n, const SphConfig& config) {
  UPDEC_REQUIRE(n >= 4, "lattice needs at least 4x4 particles");
  Particles particles;
  particles.resize(n * n);
  const double spacing = config.box / static_cast<double>(n);
  const double mass =
      config.rho0 * config.box * config.box / static_cast<double>(n * n);
  std::size_t k = 0;
  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t i = 0; i < n; ++i, ++k) {
      particles.x[k] = (static_cast<double>(i) + 0.5) * spacing;
      particles.y[k] = (static_cast<double>(j) + 0.5) * spacing;
      particles.vx[k] = particles.vy[k] = 0.0;
      particles.rho[k] = config.rho0;
      particles.p[k] = 0.0;
      particles.m[k] = mass;
    }
  }
  return particles;
}

void set_taylor_green(Particles& particles, double box, double amplitude) {
  const double k = 2.0 * std::numbers::pi / box;
  for (std::size_t i = 0; i < particles.size(); ++i) {
    particles.vx[i] =
        amplitude * std::sin(k * particles.x[i]) * std::cos(k * particles.y[i]);
    particles.vy[i] = -amplitude * std::cos(k * particles.x[i]) *
                      std::sin(k * particles.y[i]);
  }
}

}  // namespace updec::sph
