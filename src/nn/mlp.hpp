#pragma once
/// \file mlp.hpp
/// Multilayer perceptrons for the PINN strategy (section 2.3). The paper's
/// networks: 3x30 tanh for the Laplace problem (Table 1), 5x50 tanh for
/// Navier-Stokes (Table 2), plus small 1-D control networks c_theta.
///
/// The forward pass is templated on the activation scalar T and the
/// parameter scalar S, connected by a `lift` functor. This is what enables
/// forward-over-reverse PINN residuals: evaluating with T = Dual2<Var>,
/// S = Var carries exact input derivatives (u_x, u_xx, ...) while every
/// coefficient stays on the reverse tape for dLoss/dtheta.

#include <cmath>
#include <span>
#include <string>
#include <type_traits>
#include <vector>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace updec::nn {

enum class Activation { kTanh, kSin, kRelu, kIdentity };

const char* to_string(Activation activation);

/// Fully connected network with a fixed activation on hidden layers and a
/// linear output layer. Parameters are stored flat (layer by layer, weights
/// row-major then biases) so optimisers and tapes can treat them as one
/// vector.
class Mlp {
 public:
  /// \param layer_sizes e.g. {2, 30, 30, 30, 1} for the paper's Laplace u_theta.
  Mlp(std::vector<std::size_t> layer_sizes, Activation activation,
      std::uint64_t seed = 0);

  [[nodiscard]] const std::vector<std::size_t>& layer_sizes() const {
    return layers_;
  }
  [[nodiscard]] Activation activation() const { return activation_; }
  [[nodiscard]] std::size_t num_parameters() const { return params_.size(); }
  [[nodiscard]] std::size_t num_inputs() const { return layers_.front(); }
  [[nodiscard]] std::size_t num_outputs() const { return layers_.back(); }

  /// Flat parameter vector (Glorot-initialised at construction).
  [[nodiscard]] const std::vector<double>& parameters() const {
    return params_;
  }
  void set_parameters(std::span<const double> params);

  /// Re-initialise with a new seed (fresh network, same architecture).
  void reinitialize(std::uint64_t seed);

  /// Generic forward pass.
  /// \param params flat parameters of scalar type S (length num_parameters()).
  /// \param inputs network inputs of scalar type T (length num_inputs()).
  /// \param lift   converts S -> T (identity when S == T).
  template <typename T, typename S, typename Lift>
  std::vector<T> forward(std::span<const S> params, std::span<const T> inputs,
                         Lift&& lift) const {
    UPDEC_REQUIRE(params.size() == num_parameters(),
                  "parameter vector size mismatch");
    UPDEC_REQUIRE(inputs.size() == num_inputs(), "input size mismatch");
    std::vector<T> current(inputs.begin(), inputs.end());
    std::size_t offset = 0;
    for (std::size_t layer = 0; layer + 1 < layers_.size(); ++layer) {
      const std::size_t fan_in = layers_[layer];
      const std::size_t fan_out = layers_[layer + 1];
      std::vector<T> next;
      next.reserve(fan_out);
      for (std::size_t j = 0; j < fan_out; ++j) {
        // z_j = b_j + sum_i W_ji x_i  (weights row-major: W[j][i])
        T z = lift(params[offset + fan_in * fan_out + j]);  // bias
        for (std::size_t i = 0; i < fan_in; ++i)
          z = z + lift(params[offset + j * fan_in + i]) * current[i];
        const bool hidden = layer + 2 < layers_.size();
        next.push_back(hidden ? activate(z) : z);
      }
      offset += fan_in * fan_out + fan_out;
      current = std::move(next);
    }
    return current;
  }

  /// Convenience: plain double forward.
  [[nodiscard]] std::vector<double> forward(
      std::span<const double> inputs) const {
    return forward<double, double>(std::span<const double>(params_), inputs,
                                   [](double w) { return w; });
  }

  [[nodiscard]] std::string summary() const;

 private:
  template <typename T>
  T activate(const T& z) const {
    using std::sin;
    using std::tanh;
    switch (activation_) {
      case Activation::kTanh: return tanh(z);
      case Activation::kSin: return sin(z);
      case Activation::kRelu: return relu(z);
      case Activation::kIdentity: return z;
    }
    UPDEC_REQUIRE(false, "unreachable activation");
    return z;
  }

  // ReLU branches on the forward value: exact for double/Var, and the
  // standard subgradient choice (0 on the inactive side) for dual types.
  template <typename T>
  static double value_probe(const T& z) {
    if constexpr (std::is_arithmetic_v<T>) {
      return static_cast<double>(z);
    } else if constexpr (requires { z.value(); }) {
      return z.value();
    } else {
      return value_probe(z.v);  // Dual / Dual2 recurse through .v
    }
  }
  template <typename T>
  static T relu(const T& z) {
    if (value_probe(z) > 0.0) return z;
    return z * 0.0;
  }

  std::vector<std::size_t> layers_;
  Activation activation_;
  std::vector<double> params_;
};

}  // namespace updec::nn
