#include "nn/mlp.hpp"

#include <cmath>
#include <sstream>

namespace updec::nn {

const char* to_string(Activation activation) {
  switch (activation) {
    case Activation::kTanh: return "tanh";
    case Activation::kSin: return "sin";
    case Activation::kRelu: return "relu";
    case Activation::kIdentity: return "identity";
  }
  return "?";
}

Mlp::Mlp(std::vector<std::size_t> layer_sizes, Activation activation,
         std::uint64_t seed)
    : layers_(std::move(layer_sizes)), activation_(activation) {
  UPDEC_REQUIRE(layers_.size() >= 2, "MLP needs at least input and output");
  for (const std::size_t width : layers_)
    UPDEC_REQUIRE(width > 0, "layer widths must be positive");
  std::size_t count = 0;
  for (std::size_t layer = 0; layer + 1 < layers_.size(); ++layer)
    count += layers_[layer] * layers_[layer + 1] + layers_[layer + 1];
  params_.resize(count);
  reinitialize(seed);
}

void Mlp::reinitialize(std::uint64_t seed) {
  Rng rng(seed * 0x9E3779B97F4A7C15ull + 0x1234567ull);
  std::size_t offset = 0;
  for (std::size_t layer = 0; layer + 1 < layers_.size(); ++layer) {
    const std::size_t fan_in = layers_[layer];
    const std::size_t fan_out = layers_[layer + 1];
    // Glorot/Xavier uniform: U(-a, a) with a = sqrt(6 / (fan_in + fan_out)).
    const double a =
        std::sqrt(6.0 / static_cast<double>(fan_in + fan_out));
    for (std::size_t k = 0; k < fan_in * fan_out; ++k)
      params_[offset + k] = rng.uniform(-a, a);
    for (std::size_t k = 0; k < fan_out; ++k)
      params_[offset + fan_in * fan_out + k] = 0.0;  // zero biases
    offset += fan_in * fan_out + fan_out;
  }
}

void Mlp::set_parameters(std::span<const double> params) {
  UPDEC_REQUIRE(params.size() == params_.size(),
                "parameter vector size mismatch");
  params_.assign(params.begin(), params.end());
}

std::string Mlp::summary() const {
  std::ostringstream os;
  os << "Mlp(";
  for (std::size_t i = 0; i < layers_.size(); ++i)
    os << (i ? "x" : "") << layers_[i];
  os << ", " << to_string(activation_) << ", " << num_parameters()
     << " parameters)";
  return os.str();
}

}  // namespace updec::nn
