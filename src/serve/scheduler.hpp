#pragma once
/// \file scheduler.hpp
/// \brief Batch scenario-serving: fan optimal-control scenarios across a
///        thread pool with per-job cancellation, deadlines and reports.
///
/// A Scenario names one optimisation run: which problem (Laplace boundary
/// control or Navier-Stokes inflow control), which gradient strategy
/// (DP / DAL / FD), the discretisation, and the run budget. The Scheduler
/// executes scenarios on a serve::ThreadPool and memoizes the expensive
/// discretisation artefacts in a serve::OperatorCache, two-level:
///
///   1. problem bundles (assembled collocation + solver + problem object)
///      keyed by configuration -- jobs sharing a discretisation share ONE
///      problem instance (safe: the shared state is immutable after
///      construction; the lazily factored LU is mutex-guarded);
///   2. LU factorisations keyed by rbf::GlobalCollocation::content_hash()
///      -- survives bundle eviction and deduplicates across distinct
///      problem objects whose matrices happen to be identical.
///
/// Cancellation and deadlines are cooperative: they are routed into
/// control::DriverOptions::should_stop, polled once per optimisation
/// iteration, so a stopped job returns a well-formed JobReport with the
/// trajectory accumulated so far -- the pool itself never aborts.
///
/// Per-job isolation: each job draws its initial-control jitter from its own
/// Rng(seed) (never a process-global stream), so a batch's results are
/// independent of scheduling order and thread count.

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "serve/cache.hpp"
#include "serve/pool.hpp"

namespace updec::serve {

class ShardPool;

enum class ProblemKind : std::uint8_t { kLaplace = 0, kChannel = 1 };
enum class Strategy : std::uint8_t { kDp = 0, kDal = 1, kFd = 2 };

[[nodiscard]] const char* to_string(ProblemKind kind);
[[nodiscard]] const char* to_string(Strategy strategy);
/// Parse "laplace"/"channel" and "dp"/"dal"/"fd" (throws updec::Error).
[[nodiscard]] ProblemKind parse_problem_kind(const std::string& s);
[[nodiscard]] Strategy parse_strategy(const std::string& s);

/// One optimisation run to serve.
struct Scenario {
  std::string id;                ///< caller-chosen label for the report
  ProblemKind problem = ProblemKind::kLaplace;
  Strategy strategy = Strategy::kDal;

  // Discretisation.
  std::size_t grid_n = 16;        ///< Laplace: nodes per side
  std::size_t target_nodes = 500; ///< Channel: cloud size
  double reynolds = 1.0;          ///< Channel only
  int poly_degree = 1;

  // Optimisation budget.
  std::size_t iterations = 50;
  double learning_rate = 1e-2;
  double fd_step = 1e-6;

  // Per-job initial-control perturbation: control[i] += jitter * N(0, 1)
  // drawn from Rng(seed). jitter == 0 reproduces the problem's canonical
  // initial control regardless of seed.
  std::uint64_t seed = 0;
  double control_jitter = 0.0;

  /// Wall-clock budget for THIS job; 0 falls back to the scheduler's
  /// default (SchedulerOptions::default_deadline_ms), which itself
  /// defaults to "no deadline".
  double deadline_ms = 0.0;

  // Adaptive refinement (Laplace DAL only). refine_cycles > 0 serves the
  // job on an adjoint-adapted cloud grown from grid_n by that many
  // refine::AdaptiveLoop cycles; the refined discretisation is a cached
  // family artefact, so the cycle count and fraction are part of every
  // operator fingerprint (a refined cloud must never alias the uniform one,
  // or another refinement level, in the cache or in shard routing).
  std::size_t refine_cycles = 0;
  double refine_fraction = 0.0;   ///< <= 0 uses RefineConfig's default
};

enum class JobStatus : std::uint8_t {
  kPending = 0,
  kRunning = 1,
  kSucceeded = 2,
  kCancelled = 3,         ///< Scheduler::cancel() before/while running
  kDeadlineExpired = 4,   ///< cooperative deadline stop
  kFailed = 5,            ///< solver threw or the driver aborted
  kRetrying = 6,          ///< live-only: backing off before another attempt
};

[[nodiscard]] const char* to_string(JobStatus status);

/// How run_scenario handles transient failures: up to `max_retries` extra
/// attempts with exponential backoff and a deterministic per-job jitter,
/// every delay charged against the job's deadline (a retry that cannot fit
/// in the remaining budget is not taken -- the job resolves to
/// kDeadlineExpired instead of spinning), and an optional final best-effort
/// degraded attempt once the retry budget is gone.
struct RetryPolicy {
  std::size_t max_retries = 0;      ///< extra attempts after the first
  double backoff_ms = 50.0;         ///< delay before the first retry
  double backoff_multiplier = 2.0;  ///< growth per subsequent retry
  double max_backoff_ms = 2000.0;   ///< cap on any single delay
  double jitter = 0.1;              ///< +/- fraction, drawn from Rng(seed)

  /// After the last retry fails, run one more attempt with the iteration
  /// budget truncated to `degraded_iterations` of the scenario's and a
  /// doubled divergence-recovery budget. A success is reported with
  /// JobReport::degraded set (and the achieved gradient norm recorded)
  /// instead of a hard kFailed.
  bool allow_degraded = true;
  double degraded_iterations = 0.25;  ///< fraction of Scenario::iterations

  /// When > 0 and the job has a deadline: once elapsed time crosses this
  /// fraction of the deadline, ask the driver to wrap up via
  /// DriverOptions::should_degrade. The job then resolves as a degraded
  /// success with the trajectory so far, rather than running into the hard
  /// deadline and resolving kDeadlineExpired. 0 (default) disables.
  double soft_deadline_fraction = 0.0;
};

/// Policy implied by the environment: UPDEC_SERVE_RETRIES (max_retries) and
/// UPDEC_SERVE_BACKOFF_MS (backoff_ms) over the defaults above; malformed
/// values warn and keep the defaults (strict whole-string parse).
[[nodiscard]] RetryPolicy retry_policy_from_env();

/// Outcome of one scenario.
struct JobReport {
  std::string id;
  JobStatus status = JobStatus::kPending;
  double seconds = 0.0;              ///< wall-clock inside the job (all attempts)
  double final_cost = 0.0;
  std::size_t iterations = 0;        ///< accepted optimisation iterations
  std::vector<double> cost_history;  ///< J per iteration (possibly truncated)
  std::string error;                 ///< populated for kFailed
  std::size_t attempts = 0;          ///< attempts executed (>= 1 once run)
  std::size_t retries = 0;           ///< backoff delays actually taken
  bool degraded = false;             ///< best-effort result (see RetryPolicy)
  /// Final gradient norm of the returned trajectory -- the optimisation
  /// tolerance actually achieved, meaningful mainly when `degraded`.
  double achieved_tolerance = 0.0;

  [[nodiscard]] bool ok() const { return status == JobStatus::kSucceeded; }
};

struct SchedulerOptions {
  std::size_t threads = 0;          ///< 0 -> default_thread_count()
  std::size_t max_queue = 1024;     ///< ThreadPool backpressure bound
  /// Deadline applied to scenarios with deadline_ms == 0. Defaults to
  /// UPDEC_SERVE_DEADLINE_MS from the environment (0 / unset = none).
  double default_deadline_ms = -1.0;  ///< -1 -> read the environment
  OperatorCache* cache = nullptr;     ///< nullptr -> global_cache()
  /// Retry/degradation policy for every job; nullopt reads the environment
  /// (retry_policy_from_env()).
  std::optional<RetryPolicy> retry;
  /// Worker PROCESSES. nullopt reads UPDEC_SERVE_SHARDS; 0 keeps the
  /// classic in-process ThreadPool; >= 1 serves through a serve::ShardPool
  /// (fork + fingerprint routing + work stealing). In shard mode `threads`,
  /// `max_queue` and `cache` are ignored: workers run single-threaded
  /// against their own process-local global_cache(), submit() never blocks,
  /// and jobs queue parent-side without bound.
  std::optional<std::size_t> shards;
};

/// UPDEC_SERVE_DEADLINE_MS when set to a positive number, else 0 (none).
/// Malformed values warn and count as unset (strict whole-string parse).
[[nodiscard]] double default_deadline_ms_from_env();

/// Execute one scenario synchronously on the calling thread, including its
/// retry/backoff/degradation ladder. This is the exact function scheduler
/// jobs run; exposed for sequential baselines (bench_serve's cold path) and
/// tests. `external_stop` (may be empty) is polled alongside the deadline
/// (and during backoff); returning true cancels the job. `retry` nullopt
/// reads the environment; `on_status` (may be empty) observes live status
/// transitions (kRunning, kRetrying) -- the Scheduler routes these into
/// Scheduler::status().
[[nodiscard]] JobReport run_scenario(
    const Scenario& scenario, OperatorCache& cache,
    double deadline_ms = 0.0,
    const std::function<bool()>& external_stop = {},
    const std::optional<RetryPolicy>& retry = std::nullopt,
    const std::function<void(JobStatus)>& on_status = {});

class Scheduler {
 public:
  using JobId = std::size_t;

  explicit Scheduler(SchedulerOptions options = {});
  /// Waits for in-flight jobs (pool drain + join / shard-pool drain).
  ~Scheduler();

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Enqueue one scenario; returns a handle for cancel()/wait(). Blocks
  /// under queue backpressure in thread mode; returns immediately in shard
  /// mode (results stream back through the completion queue).
  JobId submit(Scenario scenario);

  /// Request cancellation. A job that has not started yet resolves to
  /// kCancelled without running; a running job stops at its next iteration
  /// boundary (in shard mode, after one kCancel frame crosses the process
  /// boundary). Returns false iff the job had already finished (the report
  /// is unaffected then).
  bool cancel(JobId id);

  /// Live status of a job: kPending until a worker picks it up, kRunning /
  /// kRetrying while in flight, then the report's final status.
  [[nodiscard]] JobStatus status(JobId id) const;

  /// Block until the job resolves and return its report. Each job's report
  /// can be waited on from any number of threads.
  [[nodiscard]] JobReport wait(JobId id);

  /// Wait for every job submitted so far, in submission order.
  [[nodiscard]] std::vector<JobReport> wait_all();

  // ---- async completion stream -------------------------------------------
  // Every job's report is ALSO pushed onto a completion queue the moment it
  // resolves, in completion (not submission) order. wait()/wait_all() and
  // the stream are independent views: consuming one never starves the other.

  /// Pop the next completed job if one is ready; nullopt otherwise.
  [[nodiscard]] std::optional<std::pair<JobId, JobReport>>
  try_next_completed();

  /// Block until a job completes and pop it. nullopt iff every submitted
  /// job's completion has already been streamed (nothing left to wait for).
  [[nodiscard]] std::optional<std::pair<JobId, JobReport>> next_completed();

  [[nodiscard]] std::size_t thread_count() const {
    return pool_ ? pool_->thread_count() : 0;
  }
  /// Worker processes in shard mode, 0 in thread mode.
  [[nodiscard]] std::size_t shard_count() const;
  [[nodiscard]] OperatorCache& cache() { return *cache_; }
  /// The shard pool (nullptr in thread mode) -- per-shard report data.
  [[nodiscard]] ShardPool* shards() { return shards_.get(); }

  /// Cache statistics across the whole serving topology: the parent cache
  /// plus, in shard mode, the delta-merged stats of every worker process
  /// (counters accumulate across worker generations; resident bytes are
  /// the live workers' sum). This is what the updec_serve report and the
  /// bench JSON should print -- OperatorCache::stats() alone is
  /// process-local and near-empty under sharding.
  [[nodiscard]] OperatorCache::Stats cache_stats();

 private:
  struct JobState {
    Scenario scenario;
    std::size_t shard_job = 0;  ///< ShardPool id (shard mode only)
    std::atomic<bool> cancelled{false};
    std::atomic<bool> done{false};
    std::atomic<JobStatus> live{JobStatus::kPending};
    std::promise<JobReport> promise;
    std::shared_future<JobReport> future;
  };

  /// Resolve a job: promise, live status, completion queue. Called exactly
  /// once per job, from the worker lambda (thread mode) or the shard pool's
  /// result callback (dispatcher thread).
  void finish_job(JobId id, const std::shared_ptr<JobState>& state,
                  JobReport&& report);

  OperatorCache* cache_;
  double default_deadline_ms_;
  RetryPolicy retry_;
  mutable std::mutex jobs_mutex_;
  std::map<JobId, std::shared_ptr<JobState>> jobs_;
  std::map<std::size_t, JobId> shard_to_job_;  ///< ShardPool id -> JobId
  JobId next_id_ = 1;
  std::deque<std::pair<JobId, JobReport>> completed_;
  std::condition_variable completed_cv_;
  std::size_t unstreamed_ = 0;  ///< submitted, completion not yet queued
  std::unique_ptr<ShardPool> shards_;  ///< shard mode only; forks in ctor
  std::unique_ptr<ThreadPool> pool_;   ///< thread mode only; last member
};

}  // namespace updec::serve
