#pragma once
/// \file scheduler.hpp
/// \brief Batch scenario-serving: fan optimal-control scenarios across a
///        thread pool with per-job cancellation, deadlines and reports.
///
/// A Scenario names one optimisation run: which problem (Laplace boundary
/// control or Navier-Stokes inflow control), which gradient strategy
/// (DP / DAL / FD), the discretisation, and the run budget. The Scheduler
/// executes scenarios on a serve::ThreadPool and memoizes the expensive
/// discretisation artefacts in a serve::OperatorCache, two-level:
///
///   1. problem bundles (assembled collocation + solver + problem object)
///      keyed by configuration -- jobs sharing a discretisation share ONE
///      problem instance (safe: the shared state is immutable after
///      construction; the lazily factored LU is mutex-guarded);
///   2. LU factorisations keyed by rbf::GlobalCollocation::content_hash()
///      -- survives bundle eviction and deduplicates across distinct
///      problem objects whose matrices happen to be identical.
///
/// Cancellation and deadlines are cooperative: they are routed into
/// control::DriverOptions::should_stop, polled once per optimisation
/// iteration, so a stopped job returns a well-formed JobReport with the
/// trajectory accumulated so far -- the pool itself never aborts.
///
/// Per-job isolation: each job draws its initial-control jitter from its own
/// Rng(seed) (never a process-global stream), so a batch's results are
/// independent of scheduling order and thread count.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "serve/cache.hpp"
#include "serve/pool.hpp"

namespace updec::serve {

enum class ProblemKind : std::uint8_t { kLaplace = 0, kChannel = 1 };
enum class Strategy : std::uint8_t { kDp = 0, kDal = 1, kFd = 2 };

[[nodiscard]] const char* to_string(ProblemKind kind);
[[nodiscard]] const char* to_string(Strategy strategy);
/// Parse "laplace"/"channel" and "dp"/"dal"/"fd" (throws updec::Error).
[[nodiscard]] ProblemKind parse_problem_kind(const std::string& s);
[[nodiscard]] Strategy parse_strategy(const std::string& s);

/// One optimisation run to serve.
struct Scenario {
  std::string id;                ///< caller-chosen label for the report
  ProblemKind problem = ProblemKind::kLaplace;
  Strategy strategy = Strategy::kDal;

  // Discretisation.
  std::size_t grid_n = 16;        ///< Laplace: nodes per side
  std::size_t target_nodes = 500; ///< Channel: cloud size
  double reynolds = 1.0;          ///< Channel only
  int poly_degree = 1;

  // Optimisation budget.
  std::size_t iterations = 50;
  double learning_rate = 1e-2;
  double fd_step = 1e-6;

  // Per-job initial-control perturbation: control[i] += jitter * N(0, 1)
  // drawn from Rng(seed). jitter == 0 reproduces the problem's canonical
  // initial control regardless of seed.
  std::uint64_t seed = 0;
  double control_jitter = 0.0;

  /// Wall-clock budget for THIS job; 0 falls back to the scheduler's
  /// default (SchedulerOptions::default_deadline_ms), which itself
  /// defaults to "no deadline".
  double deadline_ms = 0.0;
};

enum class JobStatus : std::uint8_t {
  kPending = 0,
  kRunning = 1,
  kSucceeded = 2,
  kCancelled = 3,         ///< Scheduler::cancel() before/while running
  kDeadlineExpired = 4,   ///< cooperative deadline stop
  kFailed = 5,            ///< solver threw or the driver aborted
};

[[nodiscard]] const char* to_string(JobStatus status);

/// Outcome of one scenario.
struct JobReport {
  std::string id;
  JobStatus status = JobStatus::kPending;
  double seconds = 0.0;              ///< wall-clock inside the job
  double final_cost = 0.0;
  std::size_t iterations = 0;        ///< accepted optimisation iterations
  std::vector<double> cost_history;  ///< J per iteration (possibly truncated)
  std::string error;                 ///< populated for kFailed

  [[nodiscard]] bool ok() const { return status == JobStatus::kSucceeded; }
};

struct SchedulerOptions {
  std::size_t threads = 0;          ///< 0 -> default_thread_count()
  std::size_t max_queue = 1024;     ///< ThreadPool backpressure bound
  /// Deadline applied to scenarios with deadline_ms == 0. Defaults to
  /// UPDEC_SERVE_DEADLINE_MS from the environment (0 / unset = none).
  double default_deadline_ms = -1.0;  ///< -1 -> read the environment
  OperatorCache* cache = nullptr;     ///< nullptr -> global_cache()
};

/// UPDEC_SERVE_DEADLINE_MS when set to a positive number, else 0 (none).
[[nodiscard]] double default_deadline_ms_from_env();

/// Execute one scenario synchronously on the calling thread. This is the
/// exact function scheduler jobs run; exposed for sequential baselines
/// (bench_serve's cold path) and tests. `external_stop` (may be empty) is
/// polled alongside the deadline; returning true cancels the job.
[[nodiscard]] JobReport run_scenario(
    const Scenario& scenario, OperatorCache& cache,
    double deadline_ms = 0.0,
    const std::function<bool()>& external_stop = {});

class Scheduler {
 public:
  using JobId = std::size_t;

  explicit Scheduler(SchedulerOptions options = {});
  /// Waits for in-flight jobs (pool drain + join).
  ~Scheduler();

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Enqueue one scenario; returns a handle for cancel()/wait(). Blocks
  /// under queue backpressure.
  JobId submit(Scenario scenario);

  /// Request cancellation. A job that has not started yet resolves to
  /// kCancelled without running; a running job stops at its next iteration
  /// boundary. Returns false iff the job had already finished (the report
  /// is unaffected then).
  bool cancel(JobId id);

  /// Block until the job resolves and return its report. Each job's report
  /// can be waited on from any number of threads.
  [[nodiscard]] JobReport wait(JobId id);

  /// Wait for every job submitted so far, in submission order.
  [[nodiscard]] std::vector<JobReport> wait_all();

  [[nodiscard]] std::size_t thread_count() const {
    return pool_.thread_count();
  }
  [[nodiscard]] OperatorCache& cache() { return *cache_; }

 private:
  struct JobState {
    Scenario scenario;
    std::atomic<bool> cancelled{false};
    std::atomic<bool> done{false};
    std::promise<JobReport> promise;
    std::shared_future<JobReport> future;
  };

  OperatorCache* cache_;
  double default_deadline_ms_;
  mutable std::mutex jobs_mutex_;
  std::map<JobId, std::shared_ptr<JobState>> jobs_;
  JobId next_id_ = 1;
  ThreadPool pool_;  ///< last member: workers die before the state above
};

}  // namespace updec::serve
