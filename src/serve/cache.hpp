#pragma once
/// \file cache.hpp
/// \brief Content-addressed operator cache for the scenario-serving runtime.
///
/// Assembling a global collocation matrix is O(N^2 k) and factoring it is
/// O(N^3); both depend only on (node layout, kernel, operator/row config).
/// A batch of scenarios that share a discretisation should therefore pay
/// for assembly + factorisation exactly once. This cache memoizes those
/// artefacts under 128-bit content keys built from fingerprints of their
/// inputs:
///
///   * fingerprint(PointCloud) -- positions, boundary kinds, normals, tags;
///   * fingerprint(Kernel)     -- name + phi/phi'/phi'' sampled at probe
///                                radii, so shape parameters (epsilon) and
///                                PHS exponents change the key even though
///                                they are hidden behind the virtual
///                                interface;
///   * fingerprint(Matrix)     -- raw bytes of an assembled operator (the
///                                same content address
///                                rbf::GlobalCollocation::content_hash()
///                                uses).
///
/// Eviction is LRU under a byte budget (UPDEC_CACHE_BYTES, default 512 MiB;
/// 0 disables storage entirely -- get_or_compute() then degenerates to
/// single-flight compute). Lookups are thread-safe, and concurrent misses on
/// the same key are single-flighted: one caller computes, the rest block on
/// a shared future, so a 16-job batch never factors the same matrix twice.
///
/// Counters (when metrics are enabled): serve/cache.hits, .misses,
/// .evictions, .inflight_waits; gauge serve/cache.bytes.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <future>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>

#include "la/iterative.hpp"
#include "la/lu.hpp"
#include "la/robust_solve.hpp"
#include "la/sparse.hpp"
#include "pointcloud/cloud.hpp"
#include "rbf/collocation.hpp"
#include "rbf/kernels.hpp"
#include "rbf/operators.hpp"
#include "rbf/rbffd.hpp"
#include "rom/pod_basis.hpp"

namespace updec::serve {

/// 128-bit content address (two independent FNV-1a lanes). Two lanes make
/// an accidental full-key collision astronomically unlikely even across the
/// ~2^32-entry birthday bound of a single 64-bit hash.
struct CacheKey {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  friend bool operator==(const CacheKey& a, const CacheKey& b) {
    return a.hi == b.hi && a.lo == b.lo;
  }
  friend bool operator!=(const CacheKey& a, const CacheKey& b) {
    return !(a == b);
  }
};

struct CacheKeyHash {
  std::size_t operator()(const CacheKey& k) const noexcept {
    return static_cast<std::size_t>(k.hi ^ (k.lo * 0x9e3779b97f4a7c15ULL));
  }
};

/// Incremental key construction: seed with a domain string (namespacing
/// different artefact types computed from the same inputs), then mix in
/// fingerprints, config scalars and strings.
class KeyBuilder {
 public:
  explicit KeyBuilder(std::string_view domain);

  KeyBuilder& add_bytes(const void* data, std::size_t n);
  KeyBuilder& add(std::uint64_t v);
  KeyBuilder& add(std::int64_t v) { return add(static_cast<std::uint64_t>(v)); }
  KeyBuilder& add(double v);  ///< bit pattern, so -0.0 != 0.0 by design
  KeyBuilder& add(std::string_view s);

  [[nodiscard]] CacheKey key() const { return {hi_, lo_}; }

 private:
  std::uint64_t hi_;
  std::uint64_t lo_;
};

/// Content fingerprints of the cache's input objects.
[[nodiscard]] std::uint64_t fingerprint(const pc::PointCloud& cloud);
/// Behavioural: name() + phi/dphi/d2phi sampled at fixed probe radii, so
/// kernels that differ only in hidden parameters (epsilon, exponent) get
/// distinct fingerprints.
[[nodiscard]] std::uint64_t fingerprint(const rbf::Kernel& kernel);
[[nodiscard]] std::uint64_t fingerprint(const la::Matrix& m);
/// Structure + values of a CSR operator (row pointers, column indices, raw
/// value bytes) -- the content address of a sparse system matrix.
[[nodiscard]] std::uint64_t fingerprint(const la::CsrMatrix& m);
[[nodiscard]] std::uint64_t fingerprint(const rbf::LinearOp& op);

/// Byte budget implied by the environment: UPDEC_CACHE_BYTES when set and
/// parseable (0 allowed: disables storage), else 512 MiB. Malformed values
/// warn and fall back (strict whole-string parse; no silent prefixes).
[[nodiscard]] std::size_t byte_budget_from_env();

/// Disk-tier directory implied by the environment: UPDEC_CACHE_DIR when set
/// and non-empty, else "" (disk tier disarmed).
[[nodiscard]] std::string cache_dir_from_env();

/// Crash-safe persistent blob store under the in-memory cache: one
/// content-addressed file per entry (`<dir>/<hi>-<lo>.opc`), written
/// atomically (tmp + std::rename, the driver-checkpoint discipline) with a
/// header carrying magic, format version, the full 128-bit key and an
/// FNV-1a payload checksum. Reads verify all of it; a corrupt or truncated
/// entry is counted (`serve/cache.disk_corrupt`), deleted and reported as a
/// miss -- never trusted. Write failures (disk full, permissions, the
/// `serve.cache_disk_write` fault site) degrade to a warning: the cache
/// keeps serving from memory.
class DiskCache {
 public:
  struct Stats {
    std::uint64_t hits = 0;     ///< verified payload served from disk
    std::uint64_t misses = 0;   ///< no entry on disk
    std::uint64_t writes = 0;   ///< entries persisted
    std::uint64_t corrupt = 0;  ///< rejected (bad magic/version/key/checksum)
    std::uint64_t errors = 0;   ///< I/O failures (open/write/rename)
  };

  /// Creates `dir` (and parents) if missing. An unusable directory warns
  /// and leaves the tier disabled rather than throwing: persistence is an
  /// optimisation, not a correctness requirement.
  explicit DiskCache(std::string dir);

  [[nodiscard]] bool enabled() const { return enabled_; }
  [[nodiscard]] const std::string& dir() const { return dir_; }
  [[nodiscard]] std::string path_for(const CacheKey& key) const;

  /// Load and verify the payload for `key` into `payload`. False on miss;
  /// corrupt entries are deleted and counted, then reported as a miss.
  [[nodiscard]] bool load(const CacheKey& key, std::string& payload);

  /// Atomically persist `payload` under `key`. Never throws.
  bool store(const CacheKey& key, std::string_view payload);

  /// Drop the on-disk entry for `key` (decode-level rejection: the payload
  /// checksummed fine but did not deserialize into a usable artefact).
  void reject(const CacheKey& key, const std::string& why);

  [[nodiscard]] Stats stats() const;

 private:
  std::string dir_;
  bool enabled_ = false;
  mutable std::mutex stats_mutex_;
  Stats stats_;
};

/// Thread-safe LRU cache of type-erased immutable artefacts.
class OperatorCache {
 public:
  /// Per-artefact-class accounting. Every lookup names its artefact class
  /// (e.g. "lu", "ilu0", "pod-basis"); without this the pod-basis traffic
  /// of the ROM tier would be indistinguishable from the LU rows it shares
  /// the cache with.
  struct ClassStats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::size_t bytes = 0;    ///< currently resident
    std::size_t entries = 0;  ///< currently resident
  };

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;          ///< compute actually ran
    std::uint64_t evictions = 0;
    std::uint64_t inflight_waits = 0;  ///< joined another caller's compute
    std::size_t bytes = 0;             ///< currently resident
    std::size_t entries = 0;
    std::size_t byte_budget = 0;
    std::map<std::string, ClassStats> by_class;
    DiskCache::Stats disk;             ///< zeroed when no disk tier is armed
  };

  /// A computed artefact plus its resident size (for budget accounting).
  template <typename T>
  struct Sized {
    std::shared_ptr<const T> value;
    std::size_t bytes = 0;
  };

  /// `disk_dir` non-empty arms the persistent tier (UPDEC_CACHE_DIR by
  /// default); artefacts registered through get_or_compute_disk() then
  /// survive process restarts and warm-promote into the in-memory LRU.
  explicit OperatorCache(std::size_t byte_budget = byte_budget_from_env(),
                         std::string disk_dir = cache_dir_from_env());

  OperatorCache(const OperatorCache&) = delete;
  OperatorCache& operator=(const OperatorCache&) = delete;

  /// Return the cached value for `key`, or run `compute` (exactly once
  /// across concurrent callers) and cache its result. `compute` must return
  /// Sized<T>; it runs outside the cache lock. An exception thrown by the
  /// leader's compute propagates to every caller waiting on that key and
  /// nothing is cached. `klass` names the artefact class for per-class
  /// stats accounting (a static string: "lu", "ilu0", "pod-basis", ...).
  template <typename T, typename Fn>
  std::shared_ptr<const T> get_or_compute(const CacheKey& key, Fn&& compute,
                                          const char* klass = "other") {
    std::shared_ptr<const void> p = get_or_compute_erased(
        key,
        [&compute]() -> Computed {
          Sized<T> sized = compute();
          return {std::static_pointer_cast<const void>(std::move(sized.value)),
                  sized.bytes};
        },
        klass);
    return std::static_pointer_cast<const T>(std::move(p));
  }

  /// Like get_or_compute, with the persistent tier underneath: a memory
  /// miss first probes the disk tier (a verified entry is decoded and
  /// promoted into the LRU -- the warm-restart path), and a genuine compute
  /// is encoded and persisted for the next process. `encode` maps const T&
  /// to the payload bytes; `decode` maps the verified payload back to a
  /// Sized<T> and may throw updec::Error on a malformed payload (the entry
  /// is then dropped and recomputed, like checksum-level corruption).
  /// Degenerates to plain get_or_compute when no disk tier is armed.
  template <typename T, typename Fn, typename Enc, typename Dec>
  std::shared_ptr<const T> get_or_compute_disk(const CacheKey& key,
                                               Fn&& compute, Enc&& encode,
                                               Dec&& decode,
                                               const char* klass = "other") {
    return get_or_compute<T>(
        key,
        [&]() -> Sized<T> {
          if (disk_ && disk_->enabled()) {
            std::string payload;
            if (disk_->load(key, payload)) {
              try {
                return decode(std::string_view(payload));
              } catch (const std::exception& e) {
                disk_->reject(key, e.what());
              }
            }
          }
          Sized<T> sized = compute();
          if (disk_ && disk_->enabled() && sized.value != nullptr)
            disk_->store(key, encode(*sized.value));
          return sized;
        },
        klass);
  }

  /// Probe the in-memory tier only: a hit refreshes LRU order and counts;
  /// a miss counts and returns nullptr WITHOUT computing anything. For
  /// artefacts that are published with put()/put_disk() rather than
  /// computed on demand (the ROM tier's adaptively rebuilt pod-basis).
  template <typename T>
  [[nodiscard]] std::shared_ptr<const T> try_get(const CacheKey& key,
                                                 const char* klass = "other") {
    return std::static_pointer_cast<const T>(try_get_erased(key, {}, klass));
  }

  /// try_get() with the persistent tier underneath: a memory miss probes
  /// the disk tier, and a verified entry is decoded and promoted into the
  /// LRU (the warm-restart path). `decode` may throw updec::Error on a
  /// malformed payload -- the disk entry is then rejected (deleted) and the
  /// probe reports a miss. Never computes.
  template <typename T, typename Dec>
  [[nodiscard]] std::shared_ptr<const T> try_get_disk(
      const CacheKey& key, Dec&& decode, const char* klass = "other") {
    return std::static_pointer_cast<const T>(try_get_erased(
        key,
        [&decode](std::string_view payload) -> Computed {
          Sized<T> sized = decode(payload);
          return {std::static_pointer_cast<const void>(std::move(sized.value)),
                  sized.bytes};
        },
        klass));
  }

  /// Insert or OVERWRITE the entry for `key` (get_or_compute can only fill
  /// empty slots; rebuildable artefacts need replacement semantics).
  template <typename T>
  void put(const CacheKey& key, Sized<T> sized, const char* klass = "other") {
    put_erased(key,
               Computed{std::static_pointer_cast<const void>(
                            std::move(sized.value)),
                        sized.bytes},
               {}, klass);
  }

  /// put() that also persists the payload to the disk tier (atomic
  /// overwrite) when one is armed.
  template <typename T, typename Enc>
  void put_disk(const CacheKey& key, Sized<T> sized, Enc&& encode,
                const char* klass = "other") {
    const T& value = *sized.value;
    put_erased(key,
               Computed{std::static_pointer_cast<const void>(
                            std::move(sized.value)),
                        sized.bytes},
               [&encode, &value]() -> std::string { return encode(value); },
               klass);
  }

  /// Probe without computing (testing / diagnostics). Does not count as a
  /// hit and does not touch LRU order.
  [[nodiscard]] bool contains(const CacheKey& key) const;

  /// The persistent tier, or nullptr when disarmed.
  [[nodiscard]] DiskCache* disk() { return disk_.get(); }

  /// Replace the persistent tier ("" disarms it). Forked shard workers call
  /// this with cache_dir_from_env() at startup: the parent process may have
  /// constructed the global cache before the serving environment was final,
  /// and the inherited disk binding would otherwise be stale. Existing
  /// disk-tier stats are discarded with the old tier.
  void rearm_disk(std::string dir);

  void clear();
  [[nodiscard]] Stats stats() const;
  [[nodiscard]] std::size_t byte_budget() const { return byte_budget_; }

 private:
  struct Computed {
    std::shared_ptr<const void> value;
    std::size_t bytes = 0;
  };
  struct Entry {
    CacheKey key;
    std::shared_ptr<const void> value;
    std::size_t bytes = 0;
    std::string klass;
  };

  std::shared_ptr<const void> get_or_compute_erased(
      const CacheKey& key, const std::function<Computed()>& compute,
      const char* klass);
  /// Probe memory (then disk via `decode`, when non-empty); never computes.
  std::shared_ptr<const void> try_get_erased(
      const CacheKey& key,
      const std::function<Computed(std::string_view)>& decode,
      const char* klass);
  /// Insert/overwrite; `encode` (when non-empty) feeds the disk tier.
  void put_erased(const CacheKey& key, Computed computed,
                  const std::function<std::string()>& encode,
                  const char* klass);
  /// Insert under the budget, evicting LRU tail entries. Caller holds mutex_.
  void store_locked(const CacheKey& key, const Computed& computed,
                    const char* klass);
  /// Drop `it`'s entry and fix the byte/entry/class accounting. Caller
  /// holds mutex_. Does NOT count an eviction (used by put overwrite too).
  void erase_locked(std::list<Entry>::iterator it);

  mutable std::mutex mutex_;
  std::list<Entry> lru_;  ///< front = most recently used
  std::unordered_map<CacheKey, std::list<Entry>::iterator, CacheKeyHash>
      index_;
  std::unordered_map<CacheKey, std::shared_future<Computed>, CacheKeyHash>
      inflight_;
  std::size_t byte_budget_;
  std::size_t bytes_ = 0;
  Stats stats_;
  std::unique_ptr<DiskCache> disk_;  ///< null when no directory is armed
};

/// Process-wide cache instance used by the serve scheduler (budget from
/// UPDEC_CACHE_BYTES at first use).
OperatorCache& global_cache();

// ---- disk-tier codecs ----------------------------------------------------
// Byte-exact binary round trips for the artefacts worth persisting: the
// O(N^3) dense LU, RBF-FD stencil weight matrices and ILU(0) factors.
// decode_* throw updec::Error on malformed payloads (inconsistent sizes),
// which get_or_compute_disk treats as corruption: drop and recompute.

[[nodiscard]] std::string encode_lu(const la::LuFactorization& lu);
[[nodiscard]] la::LuFactorization decode_lu(std::string_view payload);
[[nodiscard]] std::string encode_csr(const la::CsrMatrix& m);
[[nodiscard]] la::CsrMatrix decode_csr(std::string_view payload);
[[nodiscard]] std::string encode_ilu0(const la::Ilu0& ilu);
[[nodiscard]] la::Ilu0 decode_ilu0(std::string_view payload);

/// \brief fp32-factor variant of the ILU(0) codec (mixed-precision serving):
/// the sparsity pattern is stored exactly as encode_ilu0, but values are the
/// factorisation's fp32 shadow (Ilu0::factors_f32), halving the artefact
/// size. The round trip is bit-exact for the fp32 values -- decode widens
/// each float to double and Ilu0::from_factors regenerates an identical
/// fp32 shadow, since double(float(v)) is exact.
[[nodiscard]] std::string encode_ilu0_f32(const la::Ilu0& ilu);
[[nodiscard]] la::Ilu0 decode_ilu0_f32(std::string_view payload);

// ---- high-level memoization helpers --------------------------------------

/// Resident size of a factorisation: the packed LU matrix plus the
/// permutation vector.
[[nodiscard]] std::size_t lu_bytes(const la::LuFactorization& lu);

/// Factorisation of `colloc`'s matrix, memoized under its content hash.
/// On a hit the O(N^3) factor step is skipped entirely.
[[nodiscard]] std::shared_ptr<const la::LuFactorization> cached_lu(
    OperatorCache& cache, const rbf::GlobalCollocation& colloc);

/// cached_lu() + install: after this call, colloc.lu()/solve()/solve_many()
/// reuse the memoized factorisation.
void memoize_lu(OperatorCache& cache, rbf::GlobalCollocation& colloc);

/// RBF-FD differentiation matrix for `op`, memoized under
/// (cloud, kernel, stencil config, op coefficients).
[[nodiscard]] std::shared_ptr<const la::CsrMatrix> cached_rbffd_weights(
    OperatorCache& cache, const rbf::RbffdOperators& ops,
    const rbf::LinearOp& op);

/// Resident sizes of the sparse artefacts.
[[nodiscard]] std::size_t csr_bytes(const la::CsrMatrix& m);
[[nodiscard]] std::size_t ilu0_bytes(const la::Ilu0& ilu);

/// \brief ILU(0) factors of a CSR operator, memoized under its content
/// fingerprint. A warm scenario batch that re-assembles the same sparse
/// operator skips the incomplete factorisation entirely.
///
/// `fp32_factors` selects the mixed-precision artefact variant: it keys
/// under the distinct domain "ilu0-f32" (so fp64 and fp32 artefacts for the
/// same operator never alias in memory or on disk) and persists through the
/// half-size encode_ilu0_f32 codec. The fp32 shadow (what the mixed chain
/// actually applies) round trips bit-exactly through disk; a warm-restart
/// decode rebuilds the fp64 values by widening, which is fine for a
/// preconditioner -- inexactness costs Krylov iterations, never correctness,
/// and the fp64 refinement retry still verifies true fp64 residuals.
[[nodiscard]] std::shared_ptr<const la::Ilu0> cached_ilu0(
    OperatorCache& cache, const la::CsrMatrix& a, bool fp32_factors = false);

/// cached_ilu0() + install: after this call, a sparse-path solver runs its
/// Krylov chain against the memoized preconditioner. No-op when the solver
/// took the dense path (its eager LU makes the ILU irrelevant). Solvers
/// with RobustSolveOptions::mixed_precision set memoize the fp32-factor
/// artefact variant.
void memoize_preconditioner(OperatorCache& cache, la::SparseFirstSolver& op);

// ---- pod-basis artefact class (ROM tier) ---------------------------------
// The POD basis is unlike the LU/CSR/ILU artefacts: it is not a pure
// function of its key (the ROM tier rebuilds it as enrichment snapshots
// arrive), so it flows through try_get/put replacement semantics instead of
// get_or_compute. Same bit-exact codec discipline and the same
// corruption-handling ladder: checksum failures are handled by DiskCache,
// decode failures reject the entry, and either way the tier recomputes.

/// Resident size of a basis: modes + eigenvalues.
[[nodiscard]] std::size_t pod_basis_bytes(const rom::PodBasis& basis);

[[nodiscard]] std::string encode_pod_basis(const rom::PodBasis& basis);
[[nodiscard]] rom::PodBasis decode_pod_basis(std::string_view payload);

/// Content address of the pod-basis artefact for one operator fingerprint
/// (domain "pod-basis", so it never aliases the operator's LU/ILU rows).
[[nodiscard]] CacheKey pod_basis_key(std::uint64_t operator_fingerprint);

/// Warm-restart probe: the persisted basis for `operator_fingerprint`, from
/// memory or the disk tier (promoted into the LRU), or nullptr. Never
/// computes -- a missing basis is simply relearned from snapshots.
[[nodiscard]] std::shared_ptr<const rom::PodBasis> cached_pod_basis(
    OperatorCache& cache, std::uint64_t operator_fingerprint);

/// Publish (insert or overwrite) the basis artefact after a (re)build, so
/// the next process warm-restarts from the adapted basis.
void store_pod_basis(OperatorCache& cache, std::uint64_t operator_fingerprint,
                     const rom::PodBasis& basis);

}  // namespace updec::serve
