#include "serve/shard.hpp"

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <utility>

#if defined(_OPENMP)
#include <omp.h>
#endif

#include "serve/wire.hpp"
#include "util/env.hpp"
#include "util/error.hpp"
#include "util/faultinject.hpp"
#include "util/log.hpp"
#include "util/metrics.hpp"

namespace updec::serve {

std::size_t shards_from_env() {
  return static_cast<std::size_t>(env::get_u64("UPDEC_SERVE_SHARDS", 0));
}

bool steal_from_env() { return env::get_bool("UPDEC_SERVE_STEAL", true); }

std::uint64_t scenario_fingerprint(const Scenario& scenario) {
  // Exactly the fields the bundle caches key on: two scenarios that share
  // discretisation artefacts MUST share a fingerprint (shard affinity is the
  // whole point), and id/seed/budget fields MUST NOT perturb routing.
  KeyBuilder kb("shard-route");
  kb.add(static_cast<std::uint64_t>(scenario.problem));
  if (scenario.problem == ProblemKind::kLaplace) {
    kb.add(static_cast<std::uint64_t>(scenario.grid_n));
  } else {
    kb.add(static_cast<std::uint64_t>(scenario.target_nodes));
    kb.add(scenario.reynolds);
  }
  kb.add(static_cast<std::int64_t>(scenario.poly_degree));
  // Refinement level: a refined cloud is a different discretisation family
  // than the uniform one (and than any other cycle count / fraction), so it
  // must route to its own shard affinity, mirroring the refined-bundle key.
  kb.add(static_cast<std::uint64_t>(scenario.refine_cycles));
  kb.add(scenario.refine_fraction);
  const CacheKey key = kb.key();
  return key.hi ^ key.lo;
}

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

/// Counter-like cache fields: accumulate cur-prev into `acc` (prev is the
/// last snapshot already accounted for, so repeated collections never
/// double-count).
void add_cache_counter_deltas(OperatorCache::Stats& acc,
                              const OperatorCache::Stats& prev,
                              const OperatorCache::Stats& cur) {
  acc.hits += cur.hits - prev.hits;
  acc.misses += cur.misses - prev.misses;
  acc.evictions += cur.evictions - prev.evictions;
  acc.inflight_waits += cur.inflight_waits - prev.inflight_waits;
  acc.disk.hits += cur.disk.hits - prev.disk.hits;
  acc.disk.misses += cur.disk.misses - prev.disk.misses;
  acc.disk.writes += cur.disk.writes - prev.disk.writes;
  acc.disk.corrupt += cur.disk.corrupt - prev.disk.corrupt;
  acc.disk.errors += cur.disk.errors - prev.disk.errors;
  for (const auto& [name, cs] : cur.by_class) {
    OperatorCache::ClassStats prev_cs;
    const auto it = prev.by_class.find(name);
    if (it != prev.by_class.end()) prev_cs = it->second;
    OperatorCache::ClassStats& out = acc.by_class[name];
    out.hits += cs.hits - prev_cs.hits;
    out.misses += cs.misses - prev_cs.misses;
    out.evictions += cs.evictions - prev_cs.evictions;
  }
}

/// Resident (point-in-time) cache fields: add a live worker's CURRENT
/// residency on top of the accumulated counters.
void add_cache_resident(OperatorCache::Stats& out,
                        const OperatorCache::Stats& cur) {
  out.bytes += cur.bytes;
  out.entries += cur.entries;
  out.byte_budget = std::max(out.byte_budget, cur.byte_budget);
  for (const auto& [name, cs] : cur.by_class) {
    OperatorCache::ClassStats& o = out.by_class[name];
    o.bytes += cs.bytes;
    o.entries += cs.entries;
  }
}

// ---- worker side ---------------------------------------------------------

/// The forked worker's whole life: blocking frame loop on its socket. Runs
/// run_scenario exactly as the in-process scheduler would -- same retry
/// ladder, same seeded jitter -- so results are bitwise-identical to a
/// single-process run. Exits via _exit (never returns): atexit handlers
/// (metrics dump) belong to the parent, and static destructors must not run
/// against fork-inherited state.
[[noreturn]] void worker_main(int fd) {
  // The registry contents were inherited by fork; without a reset the
  // parent's pre-fork counters would be shipped back and double-counted.
  metrics::reset();
  // Likewise the global cache may have been CONSTRUCTED in the parent (the
  // Scheduler touches it) before UPDEC_CACHE_DIR reached its serving value;
  // re-arm the persistent tier from this worker's own environment so warm
  // restarts and steal-warming actually reach the shared disk directory.
  global_cache().rearm_disk(cache_dir_from_env());
#if defined(_OPENMP)
  // One core per worker: the process fan-out IS the parallelism, and a
  // post-fork OpenMP team inside each worker would oversubscribe (and trip
  // TSan's multi-threaded-fork checking).
  omp_set_num_threads(1);
#endif
  wire::FrameReader reader(fd);
  bool shutdown_requested = false;
  std::uint64_t current_job = 0;
  bool have_job = false;
  bool cancelled = false;

  const auto send_stats = [&] {
    wire::StatsFrame sf;
    sf.counters = metrics::counters_snapshot();
    sf.cache = global_cache().stats();
    (void)wire::write_frame_fd(
        fd, {wire::FrameType::kStats, wire::encode_stats(sf)});
  };

  // Control frames can arrive mid-job; the cancellation callback drains
  // them between optimisation iterations (the worker is single-threaded, so
  // this never races the main loop).
  const auto handle_control = [&](const wire::Frame& frame) {
    switch (frame.type) {
      case wire::FrameType::kCancel: {
        const wire::CancelFrame cf = wire::decode_cancel(frame.payload);
        if (have_job && cf.job_id == current_job) cancelled = true;
        break;
      }
      case wire::FrameType::kStatsRequest:
        send_stats();
        break;
      case wire::FrameType::kShutdown:
        shutdown_requested = true;
        break;
      default:
        break;  // kJob cannot arrive mid-job (one in flight per worker)
    }
  };

  for (;;) {
    std::optional<wire::Frame> frame;
    try {
      frame = reader.read_blocking();
    } catch (const std::exception&) {
      _exit(2);  // malformed stream: parent and worker lost sync
    }
    if (!frame) _exit(0);  // parent closed its end: orphaned, fold quietly
    switch (frame->type) {
      case wire::FrameType::kJob: {
        wire::JobFrame job;
        try {
          job = wire::decode_job(frame->payload);
        } catch (const std::exception&) {
          _exit(2);
        }
        current_job = job.job_id;
        have_job = true;
        cancelled = false;
        const auto external_stop = [&]() -> bool {
          try {
            while (auto ctrl = reader.poll_frame()) handle_control(*ctrl);
          } catch (const std::exception&) {
            _exit(2);
          }
          return cancelled || shutdown_requested;
        };
        JobReport report =
            run_scenario(job.scenario, global_cache(), job.deadline_ms,
                         external_stop, job.retry, {});
        have_job = false;
        wire::ResultFrame result{job.job_id, std::move(report)};
        if (!wire::write_frame_fd(fd, {wire::FrameType::kResult,
                                       wire::encode_result(result)}))
          _exit(0);
        if (shutdown_requested) {
          send_stats();
          _exit(0);
        }
        break;
      }
      case wire::FrameType::kCancel:
        break;  // raced a finished job: stale, ignore
      case wire::FrameType::kStatsRequest:
        send_stats();
        break;
      case wire::FrameType::kShutdown:
        send_stats();
        _exit(0);
      default:
        _exit(2);  // kResult/kStats from the parent: protocol violation
    }
  }
}

}  // namespace

// ---- parent side ---------------------------------------------------------

struct ShardPool::Impl {
  struct Job {
    enum class State : std::uint8_t { kQueued, kInflight, kDone };
    Scenario scenario;
    std::size_t home = 0;       ///< fingerprint shard (queue membership)
    std::size_t running_on = 0; ///< worker executing it (may differ: steal)
    std::size_t resubmits = 0;  ///< crash resubmissions so far
    bool cancel_requested = false;
    bool cancel_sent = false;  ///< kCancel frame already written
    State state = State::kQueued;
  };

  struct Worker {
    pid_t pid = -1;
    int fd = -1;
    std::unique_ptr<wire::FrameReader> reader;
    std::deque<JobId> queue;  ///< routed here, not yet dispatched
    bool busy = false;
    JobId inflight = 0;
    Clock::time_point dispatch_time;
    double inflight_deadline_ms = 0.0;
    std::size_t jobs_done = 0;
    std::size_t steals = 0;
    std::size_t restarts = 0;
    // Cross-process stats aggregation state.
    std::map<std::string, std::uint64_t> merged_counters;  ///< last merged
    OperatorCache::Stats merged_cache;  ///< last cumulative snapshot merged
    OperatorCache::Stats latest_cache;  ///< newest snapshot (residency)
    bool have_cache = false;
    std::uint64_t stats_sent_gen = 0;
    std::uint64_t stats_ack_gen = 0;
  };

  ShardOptions opts;
  double default_deadline_ms = 0.0;
  RetryPolicy retry;
  bool steal = true;

  int wake_read = -1;
  int wake_write = -1;
  std::thread dispatcher;
  std::size_t predump_token = 0;

  mutable std::mutex mutex;
  std::condition_variable cv;
  std::vector<Worker> workers;
  std::map<JobId, Job> jobs;
  JobId next_id = 1;
  std::size_t outstanding = 0;
  bool shutting_down = false;
  std::uint64_t stats_gen = 0;       ///< bumped by collect_stats()
  std::uint64_t stats_done_gen = 0;  ///< min ack across live workers
  OperatorCache::Stats accumulated;  ///< counter fields, all generations
  ResultCallback on_result;
  StatusCallback on_status;

  void wake() {
    const char b = 'w';
    ssize_t r;
    do {
      r = ::write(wake_write, &b, 1);
    } while (r < 0 && errno == EINTR);
  }

  /// Fork one worker for slot `idx`. Caller must ensure no dispatcher races
  /// (ctor: no thread yet; respawn: dispatcher thread itself).
  bool spawn(std::size_t idx) {
    int sv[2];
    if (::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) != 0) {
      log_warn() << "shard: socketpair failed: " << std::strerror(errno);
      return false;
    }
    const pid_t pid = ::fork();
    if (pid < 0) {
      log_warn() << "shard: fork failed: " << std::strerror(errno);
      ::close(sv[0]);
      ::close(sv[1]);
      return false;
    }
    if (pid == 0) {
      // Child: keep only our socket end. Inherited parent ends of sibling
      // workers would otherwise hold their sockets open past the siblings'
      // death, masking EOFs in the parent.
      ::close(sv[0]);
      if (wake_read >= 0) ::close(wake_read);
      if (wake_write >= 0) ::close(wake_write);
      for (const Worker& other : workers)
        if (other.fd >= 0) ::close(other.fd);
      worker_main(sv[1]);  // noreturn
    }
    ::close(sv[1]);
    Worker& w = workers[idx];
    w.pid = pid;
    w.fd = sv[0];
    w.reader = std::make_unique<wire::FrameReader>(sv[0]);
    w.busy = false;
    w.inflight = 0;
    // A fresh process starts with zeroed counters/cache: reset the merge
    // baselines so its first snapshot is taken at face value.
    w.merged_counters.clear();
    w.merged_cache = {};
    w.latest_cache = {};
    w.have_cache = false;
    w.stats_sent_gen = w.stats_ack_gen = stats_gen;
    return true;
  }

  /// Tear down a dead worker's parent-side state and deal with its
  /// in-flight job. Caller holds `mutex`; returns callbacks to run after
  /// the lock is released.
  struct Resolution {
    JobId id = 0;
    JobReport report;
    bool is_status_only = false;
    JobStatus status = JobStatus::kRetrying;
  };

  void close_worker(Worker& w) {
    if (w.fd >= 0) ::close(w.fd);
    w.fd = -1;
    w.reader.reset();
    if (w.pid > 0) {
      int status = 0;
      (void)::waitpid(w.pid, &status, 0);
    }
    w.pid = -1;
    // Its residency is gone; the counters merged so far stay merged. Any
    // unmerged tail (work since the last stats collection) is lost -- the
    // price of a crash, documented in docs/SERVING.md.
    w.have_cache = false;
    w.latest_cache = {};
  }

  /// Handle worker death (crash, kill or reap). `reaped_for_deadline`
  /// selects kDeadlineExpired over the resubmit path for the in-flight job.
  void handle_death(std::size_t idx, bool reaped_for_deadline,
                    std::vector<Resolution>& out) {
    Worker& w = workers[idx];
    const pid_t dead_pid = w.pid;
    close_worker(w);
    if (w.busy) {
      const JobId id = w.inflight;
      w.busy = false;
      w.inflight = 0;
      auto it = jobs.find(id);
      if (it != jobs.end() && it->second.state == Job::State::kInflight) {
        Job& job = it->second;
        if (reaped_for_deadline) {
          job.state = Job::State::kDone;
          Resolution r;
          r.id = id;
          r.report.id = job.scenario.id;
          r.report.status = JobStatus::kDeadlineExpired;
          r.report.error = "worker stalled past deadline; reaped";
          out.push_back(std::move(r));
        } else if (job.cancel_requested) {
          job.state = Job::State::kDone;
          Resolution r;
          r.id = id;
          r.report.id = job.scenario.id;
          r.report.status = JobStatus::kCancelled;
          out.push_back(std::move(r));
        } else if (job.resubmits >= retry.max_retries) {
          job.state = Job::State::kDone;
          Resolution r;
          r.id = id;
          r.report.id = job.scenario.id;
          r.report.status = JobStatus::kFailed;
          r.report.attempts = job.resubmits + 1;
          r.report.error = "worker (pid " + std::to_string(dead_pid) +
                           ") died with the job in flight; resubmit budget "
                           "exhausted";
          out.push_back(std::move(r));
        } else {
          ++job.resubmits;
          job.state = Job::State::kQueued;
          workers[job.home].queue.push_front(id);
          UPDEC_METRIC_ADD("serve/shard.resubmitted", 1);
          Resolution r;
          r.id = id;
          r.is_status_only = true;
          r.status = JobStatus::kRetrying;
          out.push_back(std::move(r));
        }
      }
    }
    if (!shutting_down) {
      ++w.restarts;
      UPDEC_METRIC_ADD("serve/shard.restarts", 1);
      log_warn() << "shard " << idx << ": worker (pid " << dead_pid
                 << ") died; respawning (restart " << w.restarts << ")";
      if (!spawn(idx)) {
        // Permanent loss: hand the queue to the next shard so nothing
        // starves. Stealing would also drain it, but may be disabled.
        const std::size_t fallback = (idx + 1) % workers.size();
        while (!w.queue.empty()) {
          workers[fallback].queue.push_back(w.queue.front());
          w.queue.pop_front();
        }
      }
    }
    refresh_stats_done();
  }

  /// Merge one kStats reply. Caller holds `mutex`.
  void merge_stats(Worker& w, const wire::StatsFrame& frame) {
    for (const auto& sample : frame.counters) {
      std::uint64_t& merged = w.merged_counters[sample.name];
      if (sample.value > merged)
        metrics::counter_add(sample.name.c_str(), sample.value - merged);
      merged = sample.value;
    }
    add_cache_counter_deltas(accumulated, w.merged_cache, frame.cache);
    w.merged_cache = frame.cache;
    w.latest_cache = frame.cache;
    w.have_cache = true;
    w.stats_ack_gen = w.stats_sent_gen;
    refresh_stats_done();
  }

  void refresh_stats_done() {
    std::uint64_t done = stats_gen;
    for (const Worker& w : workers)
      if (w.pid > 0) done = std::min(done, w.stats_ack_gen);
    stats_done_gen = done;
    cv.notify_all();
  }
};

ShardPool::ShardPool(ShardOptions options) : impl_(new Impl) {
  impl_->opts = options;
  n_shards_ = options.shards != 0 ? options.shards
                                  : std::max<std::size_t>(1, shards_from_env());
  steal_ = options.steal ? *options.steal : steal_from_env();
  impl_->steal = steal_;
  impl_->default_deadline_ms = options.default_deadline_ms < 0.0
                                   ? default_deadline_ms_from_env()
                                   : options.default_deadline_ms;
  impl_->retry = options.retry ? *options.retry : retry_policy_from_env();

  int pipefd[2];
  UPDEC_REQUIRE(::pipe(pipefd) == 0, "ShardPool: pipe failed");
  impl_->wake_read = pipefd[0];
  impl_->wake_write = pipefd[1];
  // The dispatcher drains the wake pipe dry each loop; a blocking read end
  // would wedge it once empty.
  (void)::fcntl(impl_->wake_read, F_SETFL, O_NONBLOCK);

  impl_->workers.resize(n_shards_);
  // Fork every worker BEFORE the dispatcher thread exists: a
  // single-threaded fork inherits nothing that can deadlock the child.
  for (std::size_t i = 0; i < n_shards_; ++i) {
    UPDEC_REQUIRE(impl_->spawn(i), "ShardPool: cannot fork initial worker");
  }
  UPDEC_METRIC_GAUGE_SET("serve/shard.count",
                         static_cast<double>(n_shards_));

  // Keep the atexit/bench metrics dump truthful: pull worker counters in
  // before any registry snapshot is written.
  ShardPool* self = this;
  impl_->predump_token = metrics::register_predump_hook([self] {
    (void)self->collect_stats();
  });

  impl_->dispatcher = std::thread([this] {
    Impl& im = *impl_;
    std::vector<Impl::Resolution> resolutions;
    std::vector<std::pair<JobId, JobReport>> results;
    for (;;) {
      resolutions.clear();
      results.clear();
      bool done = false;
      {
        std::unique_lock<std::mutex> lock(im.mutex);
        if (im.shutting_down && im.outstanding == 0) done = true;
      }
      if (done) break;

      // Phase 1 (under lock): pick dispatches and stats requests.
      struct Dispatch {
        std::size_t worker;
        int fd;
        pid_t pid;
        wire::JobFrame frame;
      };
      std::vector<Dispatch> dispatches;
      std::vector<std::pair<int, std::uint64_t>> cancels;  // fd, job_id
      std::vector<int> stats_requests;
      {
        std::unique_lock<std::mutex> lock(im.mutex);
        for (std::size_t i = 0; i < im.workers.size(); ++i) {
          Impl::Worker& w = im.workers[i];
          while (w.pid > 0 && !w.busy) {
            JobId id = 0;
            if (!w.queue.empty()) {
              id = w.queue.front();
              w.queue.pop_front();
            } else if (im.steal) {
              // Steal from the most-loaded queue's BACK: the victim keeps
              // the jobs it will reach soonest, the thief warms its cache
              // once through the shared disk tier.
              std::size_t victim = i;
              std::size_t depth = 0;
              for (std::size_t j = 0; j < im.workers.size(); ++j) {
                if (j == i) continue;
                if (im.workers[j].queue.size() > depth) {
                  depth = im.workers[j].queue.size();
                  victim = j;
                }
              }
              if (depth > 0) {
                id = im.workers[victim].queue.back();
                im.workers[victim].queue.pop_back();
                ++w.steals;
                UPDEC_METRIC_ADD("serve/shard.steals", 1);
              }
            }
            if (id == 0) break;  // nothing routable to this worker
            auto it = im.jobs.find(id);
            if (it == im.jobs.end() ||
                it->second.state != Impl::Job::State::kQueued)
              continue;  // defensive: stale queue entry, try the next one
            Impl::Job& job = it->second;
            job.state = Impl::Job::State::kInflight;
            job.running_on = i;
            w.busy = true;
            w.inflight = id;
            w.dispatch_time = Clock::now();
            w.inflight_deadline_ms = job.scenario.deadline_ms > 0.0
                                         ? job.scenario.deadline_ms
                                         : im.default_deadline_ms;
            Dispatch d;
            d.worker = i;
            d.fd = w.fd;
            d.pid = w.pid;
            d.frame.job_id = id;
            d.frame.deadline_ms = im.default_deadline_ms;
            d.frame.retry = im.retry;
            d.frame.scenario = job.scenario;
            dispatches.push_back(std::move(d));
            Impl::Resolution r;
            r.id = id;
            r.is_status_only = true;
            r.status = JobStatus::kRunning;
            resolutions.push_back(std::move(r));
          }
        }
        for (std::size_t i = 0; i < im.workers.size(); ++i) {
          Impl::Worker& w = im.workers[i];
          if (w.pid <= 0) continue;
          if (w.stats_sent_gen < im.stats_gen) {
            w.stats_sent_gen = im.stats_gen;
            stats_requests.push_back(w.fd);
          }
          // Cancels for this worker's in-flight job.
          if (w.busy) {
            auto it = im.jobs.find(w.inflight);
            if (it != im.jobs.end() && it->second.cancel_requested &&
                !it->second.cancel_sent) {
              it->second.cancel_sent = true;
              cancels.emplace_back(w.fd, w.inflight);
            }
          }
        }
      }

      // Phase 2 (no lock): socket writes. A failed write means the worker
      // is dead; the poll below sees the EOF and handles it.
      for (const Dispatch& d : dispatches) {
        (void)wire::write_frame_fd(
            d.fd, {wire::FrameType::kJob, wire::encode_job(d.frame)});
        // Chaos site: the PARENT kills a worker right after dispatch. The
        // armed count lives in this process, so one arming kills exactly
        // one worker (a worker-side site would re-arm on every respawn).
        if (UPDEC_FAULT_POINT("serve.shard_kill")) {
          log_warn() << "shard: fault injection killing worker pid " << d.pid;
          (void)::kill(d.pid, SIGKILL);
        }
      }
      for (const auto& [fd, job_id] : cancels)
        (void)wire::write_frame_fd(
            fd, {wire::FrameType::kCancel, wire::encode_cancel({job_id})});
      for (const int fd : stats_requests)
        (void)wire::write_frame_fd(fd,
                                   {wire::FrameType::kStatsRequest, {}});

      // Phase 3: poll. Timeout only needed to enforce deadline reaps.
      std::vector<pollfd> pfds;
      std::vector<std::size_t> pfd_worker;
      pfds.push_back({im.wake_read, POLLIN, 0});
      pfd_worker.push_back(static_cast<std::size_t>(-1));
      int timeout_ms = -1;
      {
        std::unique_lock<std::mutex> lock(im.mutex);
        for (std::size_t i = 0; i < im.workers.size(); ++i) {
          Impl::Worker& w = im.workers[i];
          if (w.pid <= 0) continue;
          pfds.push_back({w.fd, POLLIN, 0});
          pfd_worker.push_back(i);
          if (w.busy && w.inflight_deadline_ms > 0.0) {
            const double remaining =
                std::min(w.inflight_deadline_ms + im.opts.reap_grace_ms -
                             ms_since(w.dispatch_time),
                         3.6e6);
            const int t = std::max(1, static_cast<int>(remaining) + 1);
            timeout_ms = timeout_ms < 0 ? t : std::min(timeout_ms, t);
          }
        }
      }
      int rc;
      do {
        rc = ::poll(pfds.data(), pfds.size(), timeout_ms);
      } while (rc < 0 && errno == EINTR);

      if (pfds[0].revents & POLLIN) {
        char buf[64];
        while (::read(im.wake_read, buf, sizeof buf) > 0) {
        }
      }

      // Phase 4 (under lock): read results/stats, reap deaths + deadlines.
      {
        std::unique_lock<std::mutex> lock(im.mutex);
        for (std::size_t p = 1; p < pfds.size(); ++p) {
          const std::size_t i = pfd_worker[p];
          Impl::Worker& w = im.workers[i];
          if (w.pid <= 0 || w.fd != pfds[p].fd) continue;  // already replaced
          if (!(pfds[p].revents & (POLLIN | POLLHUP | POLLERR))) continue;
          bool alive = true;
          try {
            alive = w.reader->read_available();
            while (auto frame = w.reader->next_frame()) {
              if (frame->type == wire::FrameType::kResult) {
                const wire::ResultFrame res =
                    wire::decode_result(frame->payload);
                auto it = im.jobs.find(res.job_id);
                if (it != im.jobs.end() &&
                    it->second.state == Impl::Job::State::kInflight) {
                  it->second.state = Impl::Job::State::kDone;
                  ++w.jobs_done;
                  UPDEC_METRIC_ADD("serve/shard.jobs", 1);
                  results.emplace_back(res.job_id, res.report);
                }
                if (w.busy && w.inflight == res.job_id) {
                  w.busy = false;
                  w.inflight = 0;
                }
              } else if (frame->type == wire::FrameType::kStats) {
                im.merge_stats(w, wire::decode_stats(frame->payload));
              }
            }
          } catch (const std::exception& e) {
            log_warn() << "shard " << i << ": malformed stream ("
                       << e.what() << "); reaping worker";
            (void)::kill(w.pid, SIGKILL);
            alive = false;
          }
          if (!alive) im.handle_death(i, /*reaped_for_deadline=*/false,
                                      resolutions);
        }
        // Deadline reaps: a worker stalled past its job's budget + grace.
        for (std::size_t i = 0; i < im.workers.size(); ++i) {
          Impl::Worker& w = im.workers[i];
          if (w.pid <= 0 || !w.busy || w.inflight_deadline_ms <= 0.0)
            continue;
          if (ms_since(w.dispatch_time) >
              w.inflight_deadline_ms + im.opts.reap_grace_ms) {
            log_warn() << "shard " << i << ": worker (pid " << w.pid
                       << ") stalled past deadline; SIGKILL";
            (void)::kill(w.pid, SIGKILL);
            im.handle_death(i, /*reaped_for_deadline=*/true, resolutions);
          }
        }
      }

      // Phase 5 (no lock): deliver callbacks, then account completions.
      std::size_t completed = 0;
      for (auto& [id, report] : results) {
        if (metrics::enabled())
          metrics::observe("serve/job.seconds", report.seconds);
        if (im.on_result) im.on_result(id, std::move(report));
        ++completed;
      }
      for (auto& r : resolutions) {
        if (r.is_status_only) {
          if (im.on_status) im.on_status(r.id, r.status);
        } else {
          if (im.on_result) im.on_result(r.id, std::move(r.report));
          ++completed;
        }
      }
      if (completed > 0) {
        std::unique_lock<std::mutex> lock(im.mutex);
        im.outstanding -= completed;
        im.cv.notify_all();
      }
    }

    // Shutdown: final stats sweep, then fold the workers.
    {
      std::unique_lock<std::mutex> lock(im.mutex);
      for (Impl::Worker& w : im.workers)
        if (w.pid > 0)
          (void)wire::write_frame_fd(w.fd, {wire::FrameType::kShutdown, {}});
      const auto deadline = Clock::now() + std::chrono::seconds(10);
      for (;;) {
        bool any_live = false;
        std::vector<pollfd> pfds;
        std::vector<std::size_t> pfd_worker;
        for (std::size_t i = 0; i < im.workers.size(); ++i)
          if (im.workers[i].pid > 0) {
            any_live = true;
            pfds.push_back({im.workers[i].fd, POLLIN, 0});
            pfd_worker.push_back(i);
          }
        if (!any_live) break;
        const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
            deadline - Clock::now());
        if (left.count() <= 0) {
          for (Impl::Worker& w : im.workers)
            if (w.pid > 0) {
              (void)::kill(w.pid, SIGKILL);
              im.close_worker(w);
            }
          break;
        }
        lock.unlock();
        int rc;
        do {
          rc = ::poll(pfds.data(), pfds.size(),
                      static_cast<int>(left.count()));
        } while (rc < 0 && errno == EINTR);
        lock.lock();
        for (std::size_t p = 0; p < pfds.size(); ++p) {
          const std::size_t i = pfd_worker[p];
          Impl::Worker& w = im.workers[i];
          if (w.pid <= 0 || w.fd != pfds[p].fd) continue;
          if (!(pfds[p].revents & (POLLIN | POLLHUP | POLLERR))) continue;
          bool alive = true;
          try {
            alive = w.reader->read_available();
            while (auto frame = w.reader->next_frame())
              if (frame->type == wire::FrameType::kStats)
                im.merge_stats(w, wire::decode_stats(frame->payload));
          } catch (const std::exception&) {
            alive = false;
          }
          if (!alive) {
            // Final stats (if any) are merged; keep the residency snapshot
            // out of future sums by closing the worker down.
            im.close_worker(w);
          }
        }
      }
      im.cv.notify_all();
    }
  });
}

ShardPool::~ShardPool() {
  metrics::unregister_predump_hook(impl_->predump_token);
  drain();
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->shutting_down = true;
  }
  impl_->wake();
  if (impl_->dispatcher.joinable()) impl_->dispatcher.join();
  if (impl_->wake_read >= 0) ::close(impl_->wake_read);
  if (impl_->wake_write >= 0) ::close(impl_->wake_write);
}

void ShardPool::set_on_result(ResultCallback cb) {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  impl_->on_result = std::move(cb);
}

void ShardPool::set_on_status(StatusCallback cb) {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  impl_->on_status = std::move(cb);
}

ShardPool::JobId ShardPool::submit(Scenario scenario) {
  const std::size_t shard = shard_of(scenario);
  JobId id = 0;
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    id = impl_->next_id++;
    Impl::Job job;
    job.scenario = std::move(scenario);
    job.home = shard;
    impl_->jobs.emplace(id, std::move(job));
    impl_->workers[shard].queue.push_back(id);
    ++impl_->outstanding;
  }
  impl_->wake();
  return id;
}

bool ShardPool::cancel(JobId id) {
  JobReport cancelled_report;
  bool resolve_now = false;
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    auto it = impl_->jobs.find(id);
    if (it == impl_->jobs.end()) return false;
    Impl::Job& job = it->second;
    if (job.state == Impl::Job::State::kDone) return false;
    job.cancel_requested = true;
    if (job.state == Impl::Job::State::kQueued) {
      // Never crossed the process boundary: resolve right here.
      auto& queue = impl_->workers[job.home].queue;
      const auto qit = std::find(queue.begin(), queue.end(), id);
      if (qit != queue.end()) queue.erase(qit);
      job.state = Impl::Job::State::kDone;
      cancelled_report.id = job.scenario.id;
      cancelled_report.status = JobStatus::kCancelled;
      resolve_now = true;
      --impl_->outstanding;
      impl_->cv.notify_all();
    }
  }
  if (resolve_now) {
    UPDEC_METRIC_ADD("serve/jobs.cancelled", 1);
    if (impl_->on_result) impl_->on_result(id, std::move(cancelled_report));
    return true;
  }
  impl_->wake();  // dispatcher sends the kCancel frame
  return true;
}

void ShardPool::drain() {
  std::unique_lock<std::mutex> lock(impl_->mutex);
  impl_->cv.wait(lock, [this] { return impl_->outstanding == 0; });
}

OperatorCache::Stats ShardPool::collect_stats() {
  std::uint64_t want = 0;
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    want = ++impl_->stats_gen;
  }
  impl_->wake();
  std::unique_lock<std::mutex> lock(impl_->mutex);
  // Workers only poll their socket between optimisation iterations, so give
  // a busy pool a generous-but-bounded window and merge what arrived.
  impl_->cv.wait_for(lock, std::chrono::seconds(10), [this, want] {
    return impl_->stats_done_gen >= want || impl_->shutting_down;
  });
  OperatorCache::Stats out = impl_->accumulated;
  for (const Impl::Worker& w : impl_->workers)
    if (w.pid > 0 && w.have_cache) add_cache_resident(out, w.latest_cache);
  return out;
}

std::vector<ShardPool::ShardInfo> ShardPool::shard_infos() const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  std::vector<ShardInfo> infos;
  infos.reserve(impl_->workers.size());
  for (const Impl::Worker& w : impl_->workers) {
    ShardInfo info;
    info.pid = static_cast<int>(w.pid);
    info.jobs_done = w.jobs_done;
    info.steals = w.steals;
    info.restarts = w.restarts;
    info.queued = w.queue.size();
    infos.push_back(info);
  }
  return infos;
}

std::size_t ShardPool::restarts() const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  std::size_t total = 0;
  for (const Impl::Worker& w : impl_->workers) total += w.restarts;
  return total;
}

}  // namespace updec::serve
