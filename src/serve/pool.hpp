#pragma once
/// \file pool.hpp
/// \brief Bounded thread pool for the scenario-serving runtime.
///
/// A fixed set of worker threads drains a bounded FIFO job queue: no work
/// stealing, no dynamic resizing -- the serving layer wants predictable
/// backpressure (submit() blocks once `max_queue` jobs are waiting) and a
/// drain()/shutdown() story that the metrics layer can rely on. Each pool
/// registers a metrics pre-dump hook that drains in-flight jobs before the
/// registry is snapshotted, so the atexit `BENCH_*.json` dump never races
/// live workers (see util/metrics.hpp, register_predump_hook).
///
/// Job exceptions are caught in the worker loop (counted under
/// `serve/pool.job_exceptions` and logged at error level); a throwing job
/// never takes a worker thread down.

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace updec::serve {

/// Worker count implied by the environment: UPDEC_SERVE_THREADS when set to
/// a positive integer, else std::thread::hardware_concurrency() (min 1).
[[nodiscard]] std::size_t default_thread_count();

class ThreadPool {
 public:
  /// \param threads   worker count; 0 -> default_thread_count().
  /// \param max_queue bound on jobs waiting in the queue (not counting the
  ///                  ones being executed); submit() blocks when full.
  ///                  0 -> unbounded.
  explicit ThreadPool(std::size_t threads = 0, std::size_t max_queue = 1024);

  /// Drains outstanding work, joins the workers, unregisters the pre-dump
  /// hook.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t thread_count() const { return workers_.size(); }

  /// Enqueue one job. Blocks while the queue is at max_queue (backpressure);
  /// throws updec::Error after shutdown().
  void submit(std::function<void()> job);

  /// Block until the queue is empty and every worker is idle. Jobs may be
  /// submitted concurrently with a drain; it returns at a moment when all
  /// work submitted *before* the call has finished. Safe to call from a
  /// worker thread only in the degenerate sense that it returns immediately
  /// (a worker draining itself would deadlock, so the call is a no-op there
  /// -- this is what makes the metrics pre-dump hook safe even if a dump is
  /// triggered from inside a job).
  void drain();

  /// Stop accepting jobs, run what is queued, join the workers. Idempotent.
  void shutdown();

  /// Jobs queued but not yet started.
  [[nodiscard]] std::size_t pending() const;

  /// True when called from one of this pool's worker threads.
  [[nodiscard]] bool on_worker_thread() const;

 private:
  void worker_loop();

  mutable std::mutex mutex_;
  std::condition_variable cv_job_;    ///< workers wait for work / stop
  std::condition_variable cv_done_;   ///< drainers wait for quiescence
  std::condition_variable cv_space_;  ///< submitters wait for queue space
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  std::size_t active_ = 0;  ///< jobs currently executing
  std::size_t max_queue_;
  bool stop_ = false;
  std::size_t predump_token_ = 0;
};

}  // namespace updec::serve
