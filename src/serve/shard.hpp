#pragma once
/// \file shard.hpp
/// \brief Multi-process sharded serving: fork N workers, route scenarios by
///        operator fingerprint, stream results back asynchronously.
///
/// Why processes, not more threads: each worker owns a private in-memory
/// OperatorCache LRU (and ROM bundles) that stays hot for the scenario
/// families routed to it, while the UPDEC_CACHE_DIR disk tier remains the
/// shared cross-process currency -- a stolen job pays one disk-tier warm
/// instead of a full recompute. A crashed or stalled worker takes down one
/// shard's in-flight job, never the batch.
///
/// Topology: one dispatcher thread in the parent owns all worker sockets via
/// poll(); API calls (submit/cancel/drain/stats) talk to it through a
/// mutex-guarded state block plus a self-pipe wakeup. Workers are forked
/// BEFORE the dispatcher thread starts (single-threaded fork; respawns after
/// a crash are the only multi-threaded forks, and the child execs nothing
/// and starts no threads). Each worker runs a blocking read loop:
/// kJob -> run_scenario() -> kResult, polling its socket from the
/// cancellation callback so kCancel/kStatsRequest work mid-job.
///
/// Crash/deadline semantics across the process boundary:
///  * worker EOF with a job in flight -> the job is resubmitted to the
///    respawned worker, bounded by RetryPolicy::max_retries (then kFailed);
///  * a worker stalled past its job's deadline + reap_grace_ms is SIGKILLed
///    and the job resolves kDeadlineExpired (cooperative deadlines inside
///    the worker normally fire first; the reap is the backstop);
///  * queued (undispatched) jobs are parent-side state and survive any
///    worker death untouched.
///
/// Work stealing: an idle shard pulls the most recently queued job from the
/// most-loaded shard's queue (back-of-queue steal: the victim keeps the jobs
/// it will reach soonest). UPDEC_SERVE_STEAL=0 disables.
///
/// Metrics: counters serve/shard.jobs, .steals, .restarts, .resubmitted;
/// gauge serve/shard.count. Worker-side counters and cache stats are merged
/// into the parent registry via collect_stats() (and on shutdown), so the
/// atexit JSON dump aggregates the whole process tree.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "serve/cache.hpp"
#include "serve/scheduler.hpp"

namespace updec::serve {

/// UPDEC_SERVE_SHARDS: number of worker processes; 0 / unset means sharding
/// is off (in-process ThreadPool serving). Strict parse, warn + fallback.
[[nodiscard]] std::size_t shards_from_env();

/// UPDEC_SERVE_STEAL: work stealing between shards, default on.
[[nodiscard]] bool steal_from_env();

/// Routing fingerprint of a scenario: a content hash of exactly the fields
/// that determine its discretisation artefacts (problem kind, grid/cloud
/// size, Reynolds, polynomial degree). Jobs that share operators share a
/// fingerprint -- and therefore a shard -- regardless of id, seed,
/// iteration budget or jitter.
[[nodiscard]] std::uint64_t scenario_fingerprint(const Scenario& scenario);

struct ShardOptions {
  std::size_t shards = 0;  ///< 0 -> shards_from_env(), then max(1, .)
  /// Work stealing between shards; nullopt -> steal_from_env().
  std::optional<bool> steal;
  double default_deadline_ms = -1.0;  ///< -1 -> default_deadline_ms_from_env()
  std::optional<RetryPolicy> retry;   ///< nullopt -> retry_policy_from_env()
  /// Slack past a job's effective deadline before the parent SIGKILLs a
  /// stalled worker. Only applies to jobs that have a deadline at all.
  double reap_grace_ms = 500.0;
};

class ShardPool {
 public:
  using JobId = std::size_t;
  /// Result sink, invoked from the dispatcher thread once per job, after
  /// the job's terminal state is decided. Must not call back into the pool.
  using ResultCallback = std::function<void(JobId, JobReport&&)>;
  /// Live status transitions (kRunning at dispatch, kRetrying on a
  /// crash-resubmit), also from the dispatcher thread.
  using StatusCallback = std::function<void(JobId, JobStatus)>;

  /// Forks the workers (before starting any thread) and starts the
  /// dispatcher. Callbacks may only be set before the first submit().
  explicit ShardPool(ShardOptions options = {});

  /// Drains outstanding jobs, collects final worker stats, shuts the
  /// workers down and reaps them.
  ~ShardPool();

  ShardPool(const ShardPool&) = delete;
  ShardPool& operator=(const ShardPool&) = delete;

  void set_on_result(ResultCallback cb);
  void set_on_status(StatusCallback cb);

  /// Enqueue one scenario on its fingerprint's shard. Returns immediately
  /// (parent-side queues are unbounded); results stream back through the
  /// result callback.
  JobId submit(Scenario scenario);

  /// Cancel a job. Queued: resolved kCancelled without ever crossing the
  /// process boundary. In flight: a kCancel frame is sent and the worker
  /// stops at its next iteration boundary. False iff already finished.
  bool cancel(JobId id);

  /// Block until every submitted job has resolved.
  void drain();

  /// Merge every live worker's counters into the parent metrics registry
  /// (delta-merged: safe to call repeatedly) and return the aggregated
  /// OperatorCache stats across all workers, past and present. Counter-like
  /// fields accumulate across worker generations; resident bytes/entries
  /// are the sum over currently live workers.
  OperatorCache::Stats collect_stats();

  [[nodiscard]] std::size_t shard_count() const { return n_shards_; }
  [[nodiscard]] std::size_t shard_of(const Scenario& scenario) const {
    return static_cast<std::size_t>(scenario_fingerprint(scenario) %
                                    n_shards_);
  }
  [[nodiscard]] bool stealing() const { return steal_; }

  /// Per-shard observability for the updec_serve report.
  struct ShardInfo {
    int pid = -1;
    std::size_t jobs_done = 0;  ///< results received from this shard
    std::size_t steals = 0;     ///< jobs this shard stole from others
    std::size_t restarts = 0;   ///< respawns after crash/reap
    std::size_t queued = 0;     ///< jobs currently waiting on this shard
  };
  [[nodiscard]] std::vector<ShardInfo> shard_infos() const;

  /// Total worker respawns (crash + reap) across the pool.
  [[nodiscard]] std::size_t restarts() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
  std::size_t n_shards_ = 1;
  bool steal_ = true;
};

}  // namespace updec::serve
