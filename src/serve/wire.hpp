#pragma once
/// \file wire.hpp
/// \brief Length-prefixed frame codec for the shard job/result protocol.
///
/// The ShardPool parent and its forked workers speak a binary protocol over
/// socketpair(AF_UNIX, SOCK_STREAM) pipes. Every message is one frame:
///
///   magic u32 | type u32 | payload_len u64 | payload_checksum u64 | payload
///
/// all little-endian, checksum = 64-bit FNV-1a of the payload bytes. The
/// decoder is defensive on every field -- bad magic, unknown type, an
/// oversize length or a checksum mismatch are *malformed* (the peer is
/// broken or the stream lost sync; the connection must be torn down), while
/// a frame whose bytes have not all arrived yet is simply *incomplete*.
/// Payload codecs (Scenario, JobReport, stats) are bit-exact round trips --
/// doubles travel as raw bit patterns, so the cross-process differential
/// oracle can demand bitwise-equal costs between sharded and single-process
/// runs.
///
/// Pure-buffer encode/decode are exposed separately from the fd I/O so the
/// codec is testable without forking anything.

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "serve/cache.hpp"
#include "serve/scheduler.hpp"
#include "util/metrics.hpp"

namespace updec::serve::wire {

enum class FrameType : std::uint32_t {
  kJob = 1,           ///< parent -> worker: run one scenario
  kResult = 2,        ///< worker -> parent: the finished JobReport
  kCancel = 3,        ///< parent -> worker: cancel the named in-flight job
  kShutdown = 4,      ///< parent -> worker: reply kStats, then _exit(0)
  kStatsRequest = 5,  ///< parent -> worker: reply kStats, keep serving
  kStats = 6,         ///< worker -> parent: metrics + cache stats snapshot
};

/// "UPW1" -- updec wire, format 1.
inline constexpr std::uint32_t kMagic = 0x31575055u;
inline constexpr std::size_t kHeaderBytes = 24;
/// Sanity bound on a single payload; a JobReport with a full cost history is
/// kilobytes, so anything near this is stream corruption, not data.
inline constexpr std::uint64_t kMaxPayloadBytes = 64ull << 20;

struct Frame {
  FrameType type = FrameType::kJob;
  std::string payload;
};

/// 64-bit FNV-1a over `n` bytes (the frame checksum).
[[nodiscard]] std::uint64_t checksum(const void* data, std::size_t n);

[[nodiscard]] std::string encode_frame(const Frame& frame);

enum class DecodeStatus : std::uint8_t {
  kOk = 0,        ///< one whole frame decoded; `consumed` bytes used
  kNeedMore = 1,  ///< prefix of a valid frame; read more and retry
  kMalformed = 2, ///< stream is broken; `error` says how
};

struct DecodeResult {
  DecodeStatus status = DecodeStatus::kNeedMore;
  Frame frame;               ///< valid iff status == kOk
  std::size_t consumed = 0;  ///< bytes to drop from the buffer iff kOk
  std::string error;         ///< populated iff kMalformed
};

/// Decode the first frame of `buffer` (which may hold a partial frame or
/// several concatenated ones). Never throws.
[[nodiscard]] DecodeResult decode_frame(std::string_view buffer);

// ---- payload codecs ------------------------------------------------------
// decode_* throw updec::Error on truncated or out-of-range payloads.

/// One job dispatch: the scenario plus the scheduler-level policy the worker
/// must apply (the retry ladder runs INSIDE the worker, so backoff jitter
/// stays bit-identical to a single-process run).
struct JobFrame {
  std::uint64_t job_id = 0;
  double deadline_ms = 0.0;  ///< scheduler default; Scenario's own wins
  RetryPolicy retry;
  Scenario scenario;
};

[[nodiscard]] std::string encode_job(const JobFrame& job);
[[nodiscard]] JobFrame decode_job(std::string_view payload);

struct ResultFrame {
  std::uint64_t job_id = 0;
  JobReport report;
};

[[nodiscard]] std::string encode_result(const ResultFrame& result);
[[nodiscard]] ResultFrame decode_result(std::string_view payload);

struct CancelFrame {
  std::uint64_t job_id = 0;
};

[[nodiscard]] std::string encode_cancel(const CancelFrame& cancel);
[[nodiscard]] CancelFrame decode_cancel(std::string_view payload);

/// A worker's cumulative observability state since it was forked: every
/// metrics counter plus its OperatorCache stats. The parent merges deltas so
/// BENCH_*.json and the updec_serve report stay truthful under sharding.
struct StatsFrame {
  std::vector<metrics::CounterSample> counters;
  OperatorCache::Stats cache;
};

[[nodiscard]] std::string encode_stats(const StatsFrame& stats);
[[nodiscard]] StatsFrame decode_stats(std::string_view payload);

// ---- fd I/O --------------------------------------------------------------

/// Write one frame to a socket fd, looping over partial writes and EINTR
/// (SIGPIPE suppressed via MSG_NOSIGNAL). False iff the peer is gone or the
/// fd errored -- the caller reaps the worker.
bool write_frame_fd(int fd, const Frame& frame);

/// Buffered frame reader over one socket fd. The parent drives it from a
/// poll() loop (read_available + next_frame); the worker blocks on
/// read_blocking between jobs and drains opportunistically (poll_frame) from
/// inside its cancellation callback.
class FrameReader {
 public:
  explicit FrameReader(int fd) : fd_(fd) {}

  /// Pull whatever the socket has without blocking (MSG_DONTWAIT). Returns
  /// false iff the peer closed or errored (EOF).
  bool read_available();

  /// Decode the next complete frame out of the buffer, if any. Throws
  /// updec::Error on a malformed stream.
  [[nodiscard]] std::optional<Frame> next_frame();

  /// Block until one whole frame arrives. nullopt on clean EOF; throws
  /// updec::Error on a malformed stream.
  [[nodiscard]] std::optional<Frame> read_blocking();

  /// read_available() + next_frame() -- the non-blocking combination.
  [[nodiscard]] std::optional<Frame> poll_frame();

  [[nodiscard]] int fd() const { return fd_; }

 private:
  int fd_;
  std::string buffer_;
};

}  // namespace updec::serve::wire
