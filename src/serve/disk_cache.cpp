#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <system_error>

#include <unistd.h>

#include "serve/cache.hpp"
#include "util/env.hpp"
#include "util/error.hpp"
#include "util/faultinject.hpp"
#include "util/log.hpp"
#include "util/metrics.hpp"

namespace updec::serve {

namespace {

// Entry layout: header then payload, all host-endian (the cache is a
// per-machine artefact store, not an interchange format).
constexpr char kMagic[8] = {'U', 'P', 'D', 'E', 'C', 'O', 'P', 'C'};
constexpr std::uint32_t kFormatVersion = 1;

struct EntryHeader {
  char magic[8];
  std::uint32_t version = 0;
  std::uint32_t reserved = 0;
  std::uint64_t key_hi = 0;
  std::uint64_t key_lo = 0;
  std::uint64_t payload_size = 0;
  std::uint64_t payload_checksum = 0;
};
static_assert(sizeof(EntryHeader) == 48, "entry header must be packed");

std::uint64_t checksum(const void* data, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = 14695981039346656037ULL;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 1099511628211ULL;
  }
  return h;
}

std::string hex16(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

}  // namespace

std::string cache_dir_from_env() {
  return env::get_string("UPDEC_CACHE_DIR");
}

DiskCache::DiskCache(std::string dir) : dir_(std::move(dir)) {
  if (dir_.empty()) return;
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  if (ec || !std::filesystem::is_directory(dir_, ec)) {
    log_warn() << "serve cache: cannot use disk tier directory '" << dir_
               << "' (" << ec.message() << "); persistence disabled";
    return;
  }
  enabled_ = true;
  log_info() << "serve cache: persistent tier armed at " << dir_;
}

std::string DiskCache::path_for(const CacheKey& key) const {
  return dir_ + "/" + hex16(key.hi) + "-" + hex16(key.lo) + ".opc";
}

bool DiskCache::load(const CacheKey& key, std::string& payload) {
  if (!enabled_) return false;
  const std::string path = path_for(key);
  std::ifstream is(path, std::ios::binary);
  if (!is.good()) {
    std::lock_guard lock(stats_mutex_);
    ++stats_.misses;
    UPDEC_METRIC_ADD("serve/cache.disk_misses", 1);
    return false;
  }

  // Anything short of a fully verified entry is corruption: count it,
  // delete the file so it cannot poison later runs, report a miss -- the
  // caller recomputes and rewrites.
  const auto corrupt = [&](const char* why) {
    log_warn() << "serve cache: rejecting corrupt disk entry " << path << " ("
               << why << ")";
    is.close();
    std::remove(path.c_str());
    std::lock_guard lock(stats_mutex_);
    ++stats_.corrupt;
    UPDEC_METRIC_ADD("serve/cache.disk_corrupt", 1);
    return false;
  };

  EntryHeader header;
  if (!is.read(reinterpret_cast<char*>(&header), sizeof header))
    return corrupt("truncated header");
  if (std::memcmp(header.magic, kMagic, sizeof kMagic) != 0)
    return corrupt("bad magic");
  if (header.version != kFormatVersion) return corrupt("format version");
  if (header.key_hi != key.hi || header.key_lo != key.lo)
    return corrupt("key mismatch");

  payload.resize(header.payload_size);
  if (!is.read(payload.data(),
               static_cast<std::streamsize>(header.payload_size)))
    return corrupt("truncated payload");
  if (is.peek() != std::ifstream::traits_type::eof())
    return corrupt("trailing bytes");
  if (UPDEC_FAULT_POINT("serve.cache_disk_corrupt") && !payload.empty())
    payload[payload.size() / 2] ^= char{0x5A};  // simulated bit rot
  if (checksum(payload.data(), payload.size()) != header.payload_checksum)
    return corrupt("payload checksum");

  {
    std::lock_guard lock(stats_mutex_);
    ++stats_.hits;
  }
  UPDEC_METRIC_ADD("serve/cache.disk_hits", 1);
  return true;
}

bool DiskCache::store(const CacheKey& key, std::string_view payload) {
  if (!enabled_) return false;
  const std::string path = path_for(key);
  const auto fail = [&](const std::string& why) {
    log_warn() << "serve cache: disk write of " << path << " failed (" << why
               << "); serving from memory only";
    std::lock_guard lock(stats_mutex_);
    ++stats_.errors;
    UPDEC_METRIC_ADD("serve/cache.disk_errors", 1);
    return false;
  };

  if (UPDEC_FAULT_POINT("serve.cache_disk_write"))
    return fail("injected fault");

  EntryHeader header;
  std::memcpy(header.magic, kMagic, sizeof kMagic);
  header.version = kFormatVersion;
  header.key_hi = key.hi;
  header.key_lo = key.lo;
  header.payload_size = payload.size();
  header.payload_checksum = checksum(payload.data(), payload.size());

  // Unique tmp name per process + store call, so concurrent writers (other
  // threads via distinct caches, or other processes sharing the directory)
  // never interleave bytes; the POSIX rename() makes the publish atomic and
  // last-writer-wins, which is fine for content-addressed entries.
  static std::atomic<std::uint64_t> sequence{0};
  const std::string tmp =
      path + ".tmp." +
      std::to_string(static_cast<long long>(::getpid())) + "." +
      std::to_string(sequence.fetch_add(1, std::memory_order_relaxed));
  {
    std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
    if (!os.good()) return fail("cannot open tmp file");
    os.write(reinterpret_cast<const char*>(&header), sizeof header);
    os.write(payload.data(), static_cast<std::streamsize>(payload.size()));
    os.flush();
    if (!os.good()) {
      os.close();
      std::remove(tmp.c_str());
      return fail("short write");
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return fail("rename");
  }
  {
    std::lock_guard lock(stats_mutex_);
    ++stats_.writes;
  }
  UPDEC_METRIC_ADD("serve/cache.disk_writes", 1);
  return true;
}

void DiskCache::reject(const CacheKey& key, const std::string& why) {
  if (!enabled_) return;
  const std::string path = path_for(key);
  log_warn() << "serve cache: rejecting undecodable disk entry " << path
             << " (" << why << ")";
  std::remove(path.c_str());
  std::lock_guard lock(stats_mutex_);
  ++stats_.corrupt;
  UPDEC_METRIC_ADD("serve/cache.disk_corrupt", 1);
}

DiskCache::Stats DiskCache::stats() const {
  std::lock_guard lock(stats_mutex_);
  return stats_;
}

}  // namespace updec::serve
