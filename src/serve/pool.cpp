#include "serve/pool.hpp"

#include <cstdlib>
#include <exception>
#include <string>
#include <utility>

#include "util/error.hpp"
#include "util/log.hpp"
#include "util/metrics.hpp"

namespace updec::serve {

namespace {
/// Which pool (if any) the current thread belongs to. Lets drain() detect a
/// self-drain from a worker (which would deadlock) and turn it into a no-op.
thread_local const ThreadPool* t_worker_pool = nullptr;
}  // namespace

std::size_t default_thread_count() {
  if (const char* env = std::getenv("UPDEC_SERVE_THREADS")) {
    const long n = std::strtol(env, nullptr, 10);
    if (n > 0) return static_cast<std::size_t>(n);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

ThreadPool::ThreadPool(std::size_t threads, std::size_t max_queue)
    : max_queue_(max_queue) {
  if (threads == 0) threads = default_thread_count();
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
  predump_token_ = metrics::register_predump_hook([this] { drain(); });
}

ThreadPool::~ThreadPool() {
  metrics::unregister_predump_hook(predump_token_);
  shutdown();
}

void ThreadPool::submit(std::function<void()> job) {
  UPDEC_REQUIRE(job != nullptr, "ThreadPool::submit: null job");
  {
    std::unique_lock lock(mutex_);
    cv_space_.wait(lock, [this] {
      return stop_ || max_queue_ == 0 || queue_.size() < max_queue_;
    });
    UPDEC_REQUIRE(!stop_, "ThreadPool::submit after shutdown");
    queue_.push_back(std::move(job));
  }
  UPDEC_METRIC_ADD("serve/pool.jobs_submitted", 1);
  cv_job_.notify_one();
}

void ThreadPool::drain() {
  if (on_worker_thread()) return;  // self-drain would deadlock; see header
  std::unique_lock lock(mutex_);
  cv_done_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::shutdown() {
  {
    std::lock_guard lock(mutex_);
    if (stop_) return;
    stop_ = true;
  }
  cv_job_.notify_all();
  cv_space_.notify_all();
  for (std::thread& t : workers_)
    if (t.joinable()) t.join();
}

std::size_t ThreadPool::pending() const {
  std::lock_guard lock(mutex_);
  return queue_.size();
}

bool ThreadPool::on_worker_thread() const { return t_worker_pool == this; }

void ThreadPool::worker_loop() {
  t_worker_pool = this;
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock lock(mutex_);
      cv_job_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to run
      job = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    cv_space_.notify_one();
    try {
      job();
    } catch (const std::exception& e) {
      UPDEC_METRIC_ADD("serve/pool.job_exceptions", 1);
      log_error() << "serve pool job threw: " << e.what();
    } catch (...) {
      UPDEC_METRIC_ADD("serve/pool.job_exceptions", 1);
      log_error() << "serve pool job threw a non-std exception";
    }
    UPDEC_METRIC_ADD("serve/pool.jobs_completed", 1);
    bool idle = false;
    {
      std::lock_guard lock(mutex_);
      --active_;
      idle = queue_.empty() && active_ == 0;
    }
    if (idle) cv_done_.notify_all();
  }
}

}  // namespace updec::serve
