#include "serve/wire.hpp"

#include <sys/socket.h>

#include <cerrno>
#include <cstring>

#include "util/error.hpp"

namespace updec::serve::wire {

namespace {

constexpr std::uint64_t kFnvOffset = 14695981039346656037ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

/// Little-endian scalar append/extract. The serve tier only targets
/// same-machine socketpairs, but fixing the byte order keeps frames
/// comparable in tests and debuggable in captures.
void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
}

std::uint32_t get_u32(const unsigned char* p) {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

std::uint64_t get_u64(const unsigned char* p) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

/// Bounds-checked payload builder/parser (same discipline as the disk-cache
/// codecs: whole-value reads, strict lengths, throw on any truncation).
class Writer {
 public:
  void u8(std::uint8_t v) { out_.push_back(static_cast<char>(v)); }
  void u64(std::uint64_t v) { put_u64(out_, v); }
  void f64(double v) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof bits);
    u64(bits);
  }
  void str(std::string_view s) {
    u64(s.size());
    out_.append(s.data(), s.size());
  }
  [[nodiscard]] std::string take() { return std::move(out_); }

 private:
  std::string out_;
};

class Reader {
 public:
  explicit Reader(std::string_view in) : in_(in) {}

  std::uint8_t u8() {
    need(1);
    return static_cast<std::uint8_t>(in_[pos_++]);
  }
  std::uint64_t u64() {
    need(8);
    const std::uint64_t v =
        get_u64(reinterpret_cast<const unsigned char*>(in_.data()) + pos_);
    pos_ += 8;
    return v;
  }
  double f64() {
    const std::uint64_t bits = u64();
    double v = 0.0;
    std::memcpy(&v, &bits, sizeof v);
    return v;
  }
  std::string str() {
    const std::uint64_t n = u64();
    need(n);
    std::string s(in_.substr(pos_, n));
    pos_ += n;
    return s;
  }
  /// Every payload codec ends with this: trailing bytes mean the peer and we
  /// disagree about the schema, which is as fatal as truncation.
  void finish() const {
    if (pos_ != in_.size())
      throw Error("wire: trailing bytes in payload");
  }

 private:
  void need(std::uint64_t n) {
    if (n > in_.size() - pos_) throw Error("wire: truncated payload");
  }

  std::string_view in_;
  std::size_t pos_ = 0;
};

void put_scenario(Writer& w, const Scenario& sc) {
  w.str(sc.id);
  w.u8(static_cast<std::uint8_t>(sc.problem));
  w.u8(static_cast<std::uint8_t>(sc.strategy));
  w.u64(sc.grid_n);
  w.u64(sc.target_nodes);
  w.f64(sc.reynolds);
  w.u64(static_cast<std::uint64_t>(static_cast<std::int64_t>(sc.poly_degree)));
  w.u64(sc.iterations);
  w.f64(sc.learning_rate);
  w.f64(sc.fd_step);
  w.u64(sc.seed);
  w.f64(sc.control_jitter);
  w.f64(sc.deadline_ms);
  w.u64(sc.refine_cycles);
  w.f64(sc.refine_fraction);
}

Scenario get_scenario(Reader& r) {
  Scenario sc;
  sc.id = r.str();
  const std::uint8_t problem = r.u8();
  if (problem > 1) throw Error("wire: bad ProblemKind byte");
  sc.problem = static_cast<ProblemKind>(problem);
  const std::uint8_t strategy = r.u8();
  if (strategy > 2) throw Error("wire: bad Strategy byte");
  sc.strategy = static_cast<Strategy>(strategy);
  sc.grid_n = static_cast<std::size_t>(r.u64());
  sc.target_nodes = static_cast<std::size_t>(r.u64());
  sc.reynolds = r.f64();
  sc.poly_degree = static_cast<int>(static_cast<std::int64_t>(r.u64()));
  sc.iterations = static_cast<std::size_t>(r.u64());
  sc.learning_rate = r.f64();
  sc.fd_step = r.f64();
  sc.seed = r.u64();
  sc.control_jitter = r.f64();
  sc.deadline_ms = r.f64();
  sc.refine_cycles = static_cast<std::size_t>(r.u64());
  sc.refine_fraction = r.f64();
  return sc;
}

void put_retry(Writer& w, const RetryPolicy& p) {
  w.u64(p.max_retries);
  w.f64(p.backoff_ms);
  w.f64(p.backoff_multiplier);
  w.f64(p.max_backoff_ms);
  w.f64(p.jitter);
  w.u8(p.allow_degraded ? 1 : 0);
  w.f64(p.degraded_iterations);
  w.f64(p.soft_deadline_fraction);
}

RetryPolicy get_retry(Reader& r) {
  RetryPolicy p;
  p.max_retries = static_cast<std::size_t>(r.u64());
  p.backoff_ms = r.f64();
  p.backoff_multiplier = r.f64();
  p.max_backoff_ms = r.f64();
  p.jitter = r.f64();
  p.allow_degraded = r.u8() != 0;
  p.degraded_iterations = r.f64();
  p.soft_deadline_fraction = r.f64();
  return p;
}

void put_disk_stats(Writer& w, const DiskCache::Stats& d) {
  w.u64(d.hits);
  w.u64(d.misses);
  w.u64(d.writes);
  w.u64(d.corrupt);
  w.u64(d.errors);
}

DiskCache::Stats get_disk_stats(Reader& r) {
  DiskCache::Stats d;
  d.hits = r.u64();
  d.misses = r.u64();
  d.writes = r.u64();
  d.corrupt = r.u64();
  d.errors = r.u64();
  return d;
}

}  // namespace

std::uint64_t checksum(const void* data, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = kFnvOffset;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
  return h;
}

std::string encode_frame(const Frame& frame) {
  std::string out;
  out.reserve(kHeaderBytes + frame.payload.size());
  put_u32(out, kMagic);
  put_u32(out, static_cast<std::uint32_t>(frame.type));
  put_u64(out, frame.payload.size());
  put_u64(out, checksum(frame.payload.data(), frame.payload.size()));
  out.append(frame.payload);
  return out;
}

DecodeResult decode_frame(std::string_view buffer) {
  DecodeResult res;
  if (buffer.size() < kHeaderBytes) {
    res.status = DecodeStatus::kNeedMore;
    return res;
  }
  const auto* p = reinterpret_cast<const unsigned char*>(buffer.data());
  const std::uint32_t magic = get_u32(p);
  if (magic != kMagic) {
    res.status = DecodeStatus::kMalformed;
    res.error = "bad magic";
    return res;
  }
  const std::uint32_t type = get_u32(p + 4);
  if (type < 1 || type > 6) {
    res.status = DecodeStatus::kMalformed;
    res.error = "unknown frame type " + std::to_string(type);
    return res;
  }
  const std::uint64_t len = get_u64(p + 8);
  if (len > kMaxPayloadBytes) {
    res.status = DecodeStatus::kMalformed;
    res.error = "payload length " + std::to_string(len) + " exceeds cap";
    return res;
  }
  if (buffer.size() - kHeaderBytes < len) {
    res.status = DecodeStatus::kNeedMore;
    return res;
  }
  const std::uint64_t want = get_u64(p + 16);
  const std::uint64_t got = checksum(buffer.data() + kHeaderBytes,
                                     static_cast<std::size_t>(len));
  if (want != got) {
    res.status = DecodeStatus::kMalformed;
    res.error = "payload checksum mismatch";
    return res;
  }
  res.status = DecodeStatus::kOk;
  res.frame.type = static_cast<FrameType>(type);
  res.frame.payload.assign(buffer.data() + kHeaderBytes,
                           static_cast<std::size_t>(len));
  res.consumed = kHeaderBytes + static_cast<std::size_t>(len);
  return res;
}

std::string encode_job(const JobFrame& job) {
  Writer w;
  w.u64(job.job_id);
  w.f64(job.deadline_ms);
  put_retry(w, job.retry);
  put_scenario(w, job.scenario);
  return w.take();
}

JobFrame decode_job(std::string_view payload) {
  Reader r(payload);
  JobFrame job;
  job.job_id = r.u64();
  job.deadline_ms = r.f64();
  job.retry = get_retry(r);
  job.scenario = get_scenario(r);
  r.finish();
  return job;
}

std::string encode_result(const ResultFrame& result) {
  const JobReport& rep = result.report;
  Writer w;
  w.u64(result.job_id);
  w.str(rep.id);
  w.u8(static_cast<std::uint8_t>(rep.status));
  w.f64(rep.seconds);
  w.f64(rep.final_cost);
  w.u64(rep.iterations);
  w.u64(rep.cost_history.size());
  for (const double c : rep.cost_history) w.f64(c);
  w.str(rep.error);
  w.u64(rep.attempts);
  w.u64(rep.retries);
  w.u8(rep.degraded ? 1 : 0);
  w.f64(rep.achieved_tolerance);
  return w.take();
}

ResultFrame decode_result(std::string_view payload) {
  Reader r(payload);
  ResultFrame result;
  result.job_id = r.u64();
  JobReport& rep = result.report;
  rep.id = r.str();
  const std::uint8_t status = r.u8();
  if (status > 6) throw Error("wire: bad JobStatus byte");
  rep.status = static_cast<JobStatus>(status);
  rep.seconds = r.f64();
  rep.final_cost = r.f64();
  rep.iterations = static_cast<std::size_t>(r.u64());
  const std::uint64_t n = r.u64();
  if (n > kMaxPayloadBytes / sizeof(double))
    throw Error("wire: cost_history length out of range");
  rep.cost_history.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) rep.cost_history.push_back(r.f64());
  rep.error = r.str();
  rep.attempts = static_cast<std::size_t>(r.u64());
  rep.retries = static_cast<std::size_t>(r.u64());
  rep.degraded = r.u8() != 0;
  rep.achieved_tolerance = r.f64();
  r.finish();
  return result;
}

std::string encode_cancel(const CancelFrame& cancel) {
  Writer w;
  w.u64(cancel.job_id);
  return w.take();
}

CancelFrame decode_cancel(std::string_view payload) {
  Reader r(payload);
  CancelFrame cancel;
  cancel.job_id = r.u64();
  r.finish();
  return cancel;
}

std::string encode_stats(const StatsFrame& stats) {
  Writer w;
  w.u64(stats.counters.size());
  for (const auto& c : stats.counters) {
    w.str(c.name);
    w.u64(c.value);
  }
  const OperatorCache::Stats& s = stats.cache;
  w.u64(s.hits);
  w.u64(s.misses);
  w.u64(s.evictions);
  w.u64(s.inflight_waits);
  w.u64(s.bytes);
  w.u64(s.entries);
  w.u64(s.byte_budget);
  w.u64(s.by_class.size());
  for (const auto& [name, cs] : s.by_class) {
    w.str(name);
    w.u64(cs.hits);
    w.u64(cs.misses);
    w.u64(cs.evictions);
    w.u64(cs.bytes);
    w.u64(cs.entries);
  }
  put_disk_stats(w, s.disk);
  return w.take();
}

StatsFrame decode_stats(std::string_view payload) {
  Reader r(payload);
  StatsFrame stats;
  const std::uint64_t n_counters = r.u64();
  for (std::uint64_t i = 0; i < n_counters; ++i) {
    metrics::CounterSample c;
    c.name = r.str();
    c.value = r.u64();
    stats.counters.push_back(std::move(c));
  }
  OperatorCache::Stats& s = stats.cache;
  s.hits = r.u64();
  s.misses = r.u64();
  s.evictions = r.u64();
  s.inflight_waits = r.u64();
  s.bytes = static_cast<std::size_t>(r.u64());
  s.entries = static_cast<std::size_t>(r.u64());
  s.byte_budget = static_cast<std::size_t>(r.u64());
  const std::uint64_t n_classes = r.u64();
  for (std::uint64_t i = 0; i < n_classes; ++i) {
    std::string name = r.str();
    OperatorCache::ClassStats cs;
    cs.hits = r.u64();
    cs.misses = r.u64();
    cs.evictions = r.u64();
    cs.bytes = static_cast<std::size_t>(r.u64());
    cs.entries = static_cast<std::size_t>(r.u64());
    s.by_class.emplace(std::move(name), cs);
  }
  s.disk = get_disk_stats(r);
  r.finish();
  return stats;
}

bool write_frame_fd(int fd, const Frame& frame) {
  const std::string bytes = encode_frame(frame);
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd, bytes.data() + sent, bytes.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;  // EPIPE/ECONNRESET: peer is gone, EAGAIN cannot happen
                     // on a blocking socket end
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

bool FrameReader::read_available() {
  char chunk[4096];
  for (;;) {
    const ssize_t n = ::recv(fd_, chunk, sizeof chunk, MSG_DONTWAIT);
    if (n > 0) {
      buffer_.append(chunk, static_cast<std::size_t>(n));
      if (static_cast<std::size_t>(n) < sizeof chunk) return true;
      continue;  // socket may hold more
    }
    if (n == 0) return false;  // clean EOF
    if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
    if (errno == EINTR) continue;
    return false;  // hard error: treat like EOF, caller reaps
  }
}

std::optional<wire::Frame> FrameReader::next_frame() {
  const DecodeResult res = decode_frame(buffer_);
  switch (res.status) {
    case DecodeStatus::kNeedMore:
      return std::nullopt;
    case DecodeStatus::kMalformed:
      throw Error("wire: malformed frame: " + res.error);
    case DecodeStatus::kOk:
      break;
  }
  buffer_.erase(0, res.consumed);
  return res.frame;
}

std::optional<wire::Frame> FrameReader::read_blocking() {
  for (;;) {
    if (auto frame = next_frame()) return frame;
    char chunk[4096];
    const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
    if (n > 0) {
      buffer_.append(chunk, static_cast<std::size_t>(n));
      continue;
    }
    if (n == 0) return std::nullopt;  // clean EOF
    if (errno == EINTR) continue;
    return std::nullopt;  // hard error: same as EOF for the caller
  }
}

std::optional<wire::Frame> FrameReader::poll_frame() {
  if (auto frame = next_frame()) return frame;
  if (!read_available()) {
    // Peer gone. Whatever is buffered may still hold whole frames; after
    // that the caller sees nullopt forever and handles the EOF elsewhere.
    return next_frame();
  }
  return next_frame();
}

}  // namespace updec::serve::wire
