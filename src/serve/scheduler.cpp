#include "serve/scheduler.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <exception>
#include <limits>
#include <thread>
#include <utility>

#include "serve/shard.hpp"

#include "control/channel_problem.hpp"
#include "control/driver.hpp"
#include "control/laplace_problem.hpp"
#include "pointcloud/generators.hpp"
#include "refine/adaptive_loop.hpp"
#include "rom/config.hpp"
#include "rom/laplace_rom.hpp"
#include "rom/snapshot_bank.hpp"
#include "util/env.hpp"
#include "util/error.hpp"
#include "util/faultinject.hpp"
#include "util/log.hpp"
#include "util/metrics.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"
#include "util/trace.hpp"

namespace updec::serve {

const char* to_string(ProblemKind kind) {
  switch (kind) {
    case ProblemKind::kLaplace: return "laplace";
    case ProblemKind::kChannel: return "channel";
  }
  return "?";
}

const char* to_string(Strategy strategy) {
  switch (strategy) {
    case Strategy::kDp: return "dp";
    case Strategy::kDal: return "dal";
    case Strategy::kFd: return "fd";
  }
  return "?";
}

const char* to_string(JobStatus status) {
  switch (status) {
    case JobStatus::kPending: return "pending";
    case JobStatus::kRunning: return "running";
    case JobStatus::kSucceeded: return "succeeded";
    case JobStatus::kCancelled: return "cancelled";
    case JobStatus::kDeadlineExpired: return "deadline_expired";
    case JobStatus::kFailed: return "failed";
    case JobStatus::kRetrying: return "retrying";
  }
  return "?";
}

ProblemKind parse_problem_kind(const std::string& s) {
  if (s == "laplace") return ProblemKind::kLaplace;
  if (s == "channel" || s == "navier-stokes") return ProblemKind::kChannel;
  throw Error("unknown problem kind '" + s + "' (want laplace|channel)");
}

Strategy parse_strategy(const std::string& s) {
  if (s == "dp") return Strategy::kDp;
  if (s == "dal") return Strategy::kDal;
  if (s == "fd") return Strategy::kFd;
  throw Error("unknown strategy '" + s + "' (want dp|dal|fd)");
}

double default_deadline_ms_from_env() {
  const double v = env::get_double("UPDEC_SERVE_DEADLINE_MS", 0.0);
  return v > 0.0 ? v : 0.0;
}

RetryPolicy retry_policy_from_env() {
  RetryPolicy policy;
  policy.max_retries = static_cast<std::size_t>(env::get_u64(
      "UPDEC_SERVE_RETRIES", static_cast<std::uint64_t>(policy.max_retries)));
  policy.backoff_ms =
      std::max(0.0, env::get_double("UPDEC_SERVE_BACKOFF_MS",
                                    policy.backoff_ms));
  return policy;
}

namespace {

/// Everything a Laplace scenario family shares: the kernel, the assembled
/// problem (collocation + flux operators) and -- via memoize_lu -- the
/// factorisation. Immutable after construction, so one bundle serves any
/// number of concurrent jobs (GlobalCollocation's lazy LU is mutex-guarded,
/// and each DP strategy instance owns its private tape).
struct LaplaceBundle {
  std::unique_ptr<const rbf::Kernel> kernel;
  std::shared_ptr<control::LaplaceControlProblem> problem;
};

std::shared_ptr<const LaplaceBundle> laplace_bundle(OperatorCache& cache,
                                                    const Scenario& sc) {
  const rbf::PolyharmonicSpline probe_kernel(3);
  KeyBuilder kb("laplace-bundle");
  kb.add(static_cast<std::uint64_t>(sc.grid_n));
  kb.add(static_cast<std::int64_t>(sc.poly_degree));
  kb.add(fingerprint(probe_kernel));
  return cache.get_or_compute<LaplaceBundle>(
      kb.key(),
      [&cache, &sc] {
        UPDEC_TRACE_SCOPE("serve/build_laplace_bundle");
        auto bundle = std::make_shared<LaplaceBundle>();
        bundle->kernel = std::make_unique<rbf::PolyharmonicSpline>(3);
        bundle->problem = std::make_shared<control::LaplaceControlProblem>(
            sc.grid_n, *bundle->kernel, sc.poly_degree);
        // Level 2: the factorisation is ALSO cached under the matrix content
        // hash, so it survives bundle eviction and is shared with any other
        // bundle whose collocation matrix is bit-identical.
        memoize_lu(cache, bundle->problem->solver().collocation());
        const std::size_t ss =
            bundle->problem->solver().collocation().system_size();
        // Dominant storage: collocation matrix + flux/evaluation operators +
        // the (separately accounted but bundle-pinned) LU.
        return OperatorCache::Sized<LaplaceBundle>{
            std::move(bundle), 3 * ss * ss * sizeof(double)};
      },
      "bundle");
}

/// The reduced-order family bundle: the sparse (RBF-FD) Laplace problem plus
/// the shared SnapshotBank + RomSolver every DAL job of the family routes
/// through. The RomSolver is internally synchronised, so one bundle serves
/// concurrent jobs; sharing is the whole point -- each job's escalations
/// enrich the basis the NEXT job's iterations solve against.
struct LaplaceRomBundle {
  std::unique_ptr<const rbf::Kernel> kernel;
  std::shared_ptr<rom::LaplaceFdControlProblem> problem;
  std::unique_ptr<rom::SnapshotBank> bank;
  std::shared_ptr<rom::RomSolver> rom;
};

std::shared_ptr<const LaplaceRomBundle> laplace_rom_bundle(
    OperatorCache& cache, const Scenario& sc, const rom::RomConfig& rc) {
  const rbf::PolyharmonicSpline probe_kernel(3);
  KeyBuilder kb("laplace-rom-bundle");
  kb.add(static_cast<std::uint64_t>(sc.grid_n));
  kb.add(fingerprint(probe_kernel));
  // The ROM knobs shape the solver's behaviour, not just its speed, so two
  // configurations never share a bundle (or its accumulated snapshots).
  kb.add(rc.tol);
  kb.add(static_cast<std::uint64_t>(rc.max_k));
  kb.add(static_cast<std::uint64_t>(rc.min_snapshots));
  return cache.get_or_compute<LaplaceRomBundle>(
      kb.key(),
      [&cache, &sc, &rc] {
        UPDEC_TRACE_SCOPE("serve/build_laplace_rom_bundle");
        auto bundle = std::make_shared<LaplaceRomBundle>();
        bundle->kernel = std::make_unique<rbf::PolyharmonicSpline>(3);
        bundle->problem = std::make_shared<rom::LaplaceFdControlProblem>(
            sc.grid_n, *bundle->kernel);
        la::SparseFirstSolver& op = bundle->problem->solver().op();
        // Escalated solves run the full Krylov chain -- give them the
        // memoized ILU factors like any other sparse-path consumer.
        memoize_preconditioner(cache, op);
        const std::uint64_t fp = fingerprint(op.matrix());
        bundle->bank = std::make_unique<rom::SnapshotBank>(rc.snapshot_bytes);
        bundle->rom = std::make_shared<rom::RomSolver>(op, *bundle->bank, fp,
                                                       rc);
        // Warm restart: adopt the persisted basis for this operator if one
        // survives in the cache (memory or disk), and persist every rebuild
        // so the NEXT process starts where this one left off. The cache
        // outlives the bundle (it owns it), so the raw pointer is safe.
        if (auto persisted = cached_pod_basis(cache, fp))
          bundle->rom->install_basis(std::move(persisted));
        OperatorCache* cache_ptr = &cache;
        bundle->rom->on_basis_rebuilt(
            [cache_ptr, fp](const rom::PodBasis& basis) {
              store_pod_basis(*cache_ptr, fp, basis);
            });
        const std::size_t bytes =
            csr_bytes(op.matrix()) + rc.snapshot_bytes / 4;
        return OperatorCache::Sized<LaplaceRomBundle>{std::move(bundle),
                                                      bytes};
      },
      "rom-bundle");
}

/// The adaptively refined family bundle: the cloud grown by
/// refine::AdaptiveLoop from the scenario's base grid, wrapped as a sparse
/// Laplace problem ready for per-job DAL runs. The adaptation itself runs
/// with a FIXED internal optimisation budget -- the artefact must depend on
/// the discretisation + refinement knobs only, never on a particular job's
/// iteration budget, or two jobs of the same family would disagree about
/// which cloud they share.
struct LaplaceRefinedBundle {
  std::unique_ptr<const rbf::Kernel> kernel;
  std::shared_ptr<rom::LaplaceFdControlProblem> problem;
};

std::shared_ptr<const LaplaceRefinedBundle> laplace_refined_bundle(
    OperatorCache& cache, const Scenario& sc) {
  const rbf::PolyharmonicSpline probe_kernel(3);
  refine::RefineConfig rc;
  rc.cycles = sc.refine_cycles;
  if (sc.refine_fraction > 0.0 && sc.refine_fraction < 1.0)
    rc.refine_fraction = sc.refine_fraction;
  KeyBuilder kb("laplace-refined-bundle");
  kb.add(static_cast<std::uint64_t>(sc.grid_n));
  kb.add(static_cast<std::int64_t>(sc.poly_degree));
  kb.add(fingerprint(probe_kernel));
  // The refinement level: every knob that shapes the adapted cloud. Two
  // levels must never alias (the cloud IS the artefact).
  kb.add(static_cast<std::uint64_t>(rc.cycles));
  kb.add(rc.refine_fraction);
  kb.add(rc.coarsen_fraction);
  kb.add(static_cast<std::uint64_t>(rc.max_nodes));
  return cache.get_or_compute<LaplaceRefinedBundle>(
      kb.key(),
      [&sc, &rc] {
        UPDEC_TRACE_SCOPE("serve/build_laplace_refined_bundle");
        auto bundle = std::make_shared<LaplaceRefinedBundle>();
        bundle->kernel = std::make_unique<rbf::PolyharmonicSpline>(3);
        refine::AdaptiveOptions options;
        options.refine = rc;
        refine::AdaptiveLoop loop(sc.grid_n, *bundle->kernel, options);
        bundle->problem = loop.run().problem;
        const la::CsrMatrix& m = bundle->problem->solver().op().matrix();
        const std::size_t bytes =
            (m.values().size() + m.col_idx().size()) * sizeof(double) +
            m.row_ptr().size() * sizeof(std::size_t);
        return OperatorCache::Sized<LaplaceRefinedBundle>{std::move(bundle),
                                                          bytes};
      },
      "refined-bundle");
}

/// A built job: the strategy plus whatever owns the problem's lifetime.
struct Built {
  std::shared_ptr<const control::ControlProblem> problem;
  std::unique_ptr<control::GradientStrategy> strategy;
  std::shared_ptr<const void> keepalive;
};

/// Channel problems are built per job (the projection solver caches state
/// internally and is not documented concurrency-safe), so only hold the
/// kernel + problem together.
struct ChannelHolder {
  rbf::PolyharmonicSpline kernel{3};
  std::shared_ptr<control::ChannelFlowControlProblem> problem;
};

Built build_job(const Scenario& sc, OperatorCache& cache) {
  Built built;
  if (sc.problem == ProblemKind::kLaplace) {
    if (sc.strategy == Strategy::kDal && sc.refine_cycles > 0) {
      // Refined-cloud serving: the job runs full DAL on the adapted cloud.
      // Takes precedence over the ROM reroute -- the ROM bundle's POD basis
      // belongs to the uniform operator and must not be mixed with a
      // refined discretisation.
      std::shared_ptr<const LaplaceRefinedBundle> bundle =
          laplace_refined_bundle(cache, sc);
      built.strategy = rom::make_laplace_fd_dal(bundle->problem);
      built.problem = bundle->problem;
      built.keepalive = bundle;
      return built;
    }
    if (sc.strategy == Strategy::kDal) {
      // UPDEC_ROM=1 reroutes Laplace DAL jobs through the reduced-order
      // tier: same cost functional, but the inner PDE solves go to a shared
      // POD/Galerkin solver that escalates to the full sparse path whenever
      // its error estimate misses UPDEC_ROM_TOL.
      const rom::RomConfig rc = rom::config_from_env();
      if (rc.enabled) {
        std::shared_ptr<const LaplaceRomBundle> bundle =
            laplace_rom_bundle(cache, sc, rc);
        built.strategy = rom::make_laplace_rom_dal(bundle->problem,
                                                   bundle->rom);
        built.problem = bundle->problem;
        built.keepalive = bundle;
        return built;
      }
    }
    std::shared_ptr<const LaplaceBundle> bundle = laplace_bundle(cache, sc);
    std::shared_ptr<const control::LaplaceControlProblem> problem =
        bundle->problem;
    switch (sc.strategy) {
      case Strategy::kDp:
        built.strategy = control::make_laplace_dp(problem);
        break;
      case Strategy::kDal:
        built.strategy = control::make_laplace_dal(problem);
        break;
      case Strategy::kFd:
        built.strategy = control::make_laplace_fd(problem, sc.fd_step);
        break;
    }
    built.problem = problem;
    built.keepalive = bundle;
  } else {
    auto holder = std::make_shared<ChannelHolder>();
    pc::ChannelSpec spec;
    spec.target_nodes = sc.target_nodes;
    pde::ChannelFlowConfig config;
    config.reynolds = sc.reynolds;
    holder->problem = std::make_shared<control::ChannelFlowControlProblem>(
        spec, holder->kernel, config);
    std::shared_ptr<const control::ChannelFlowControlProblem> problem =
        holder->problem;
    switch (sc.strategy) {
      case Strategy::kDp:
        built.strategy = control::make_channel_dp(problem);
        break;
      case Strategy::kDal:
        built.strategy = control::make_channel_dal(problem);
        break;
      case Strategy::kFd:
        built.strategy = control::make_channel_fd(problem);
        break;
    }
    built.problem = problem;
    built.keepalive = holder;
  }
  return built;
}

/// Milliseconds elapsed since `start`.
double elapsed_ms_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

/// One attempt at a scenario: build (or fetch from cache), optimise, map the
/// driver outcome to a JobStatus. The deadline clock (`start`) is shared
/// across every attempt of the job, so retries and degraded attempts are
/// charged against the same budget as the first try. A degraded attempt
/// truncates the iteration budget and doubles the divergence-recovery
/// allowance -- best-effort, not best-quality.
JobReport run_attempt(const Scenario& scenario, OperatorCache& cache,
                      double effective_deadline_ms,
                      std::chrono::steady_clock::time_point start,
                      const std::function<bool()>& external_stop,
                      const RetryPolicy& policy, bool degraded_attempt) {
  JobReport report;
  report.id = scenario.id;
  report.status = JobStatus::kRunning;

  // The deadline and cancellation are observed cooperatively from
  // should_stop, which runs on this thread inside the driver loop, so
  // plain captured flags suffice to record which trigger fired.
  bool cancelled = false;
  bool deadline_expired = false;
  bool soft_degraded = false;

  try {
    // Deterministic fault sites for chaos testing (no-ops unless armed via
    // UPDEC_FAULTS): a latency spike, then a transient solve failure.
    if (UPDEC_FAULT_POINT("serve.solve_latency"))
      std::this_thread::sleep_for(std::chrono::milliseconds(25));
    if (UPDEC_FAULT_POINT("serve.solve_fault"))
      throw Error("injected transient solve fault");

    Built built = build_job(scenario, cache);

    la::Vector control = built.problem->initial_control();
    if (scenario.control_jitter > 0.0) {
      Rng rng(scenario.seed ? scenario.seed : 0x9E3779B97F4A7C15ull);
      for (std::size_t i = 0; i < control.size(); ++i)
        control[i] += rng.normal(0.0, scenario.control_jitter);
    }

    control::DriverOptions options;
    options.iterations = scenario.iterations;
    options.initial_learning_rate = scenario.learning_rate;
    if (degraded_attempt) {
      options.iterations = std::max<std::size_t>(
          1, static_cast<std::size_t>(
                 static_cast<double>(scenario.iterations) *
                 std::clamp(policy.degraded_iterations, 0.0, 1.0)));
      options.max_recoveries *= 2;
    }
    options.should_stop = [&]() {
      if (external_stop && external_stop()) {
        cancelled = true;
        return true;
      }
      if (effective_deadline_ms > 0.0 &&
          elapsed_ms_since(start) >= effective_deadline_ms) {
        deadline_expired = true;
        return true;
      }
      return false;
    };
    if (policy.soft_deadline_fraction > 0.0 && effective_deadline_ms > 0.0) {
      const double soft_ms =
          effective_deadline_ms * policy.soft_deadline_fraction;
      options.should_degrade = [&, soft_ms]() {
        if (elapsed_ms_since(start) >= soft_ms) {
          soft_degraded = true;
          return true;
        }
        return false;
      };
    }

    control::DriverResult result =
        control::optimize_from(std::move(control), *built.strategy, options);

    report.final_cost = result.final_cost;
    report.iterations = result.iterations;
    report.cost_history = std::move(result.cost_history);
    if (!result.grad_norm_history.empty())
      report.achieved_tolerance = result.grad_norm_history.back();
    if (result.aborted) {
      report.status = JobStatus::kFailed;
      report.error = "divergence recovery budget exhausted";
    } else if (cancelled) {
      report.status = JobStatus::kCancelled;
    } else if (deadline_expired) {
      report.status = JobStatus::kDeadlineExpired;
    } else {
      report.status = JobStatus::kSucceeded;
      report.degraded = degraded_attempt || soft_degraded;
    }
  } catch (const std::exception& e) {
    report.status = JobStatus::kFailed;
    report.error = e.what();
  } catch (...) {
    report.status = JobStatus::kFailed;
    report.error = "unknown exception";
  }
  return report;
}

/// Sleep `delay_ms` in small slices, polling `external_stop` between slices
/// so cancellation interrupts a backoff promptly. Returns false iff stopped.
bool backoff_sleep(double delay_ms, const std::function<bool()>& stop) {
  const auto start = std::chrono::steady_clock::now();
  while (elapsed_ms_since(start) < delay_ms) {
    if (stop && stop()) return false;
    const double remaining = delay_ms - elapsed_ms_since(start);
    std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
        std::min(remaining, 5.0)));
  }
  return !(stop && stop());
}

}  // namespace

JobReport run_scenario(const Scenario& scenario, OperatorCache& cache,
                       double deadline_ms,
                       const std::function<bool()>& external_stop,
                       const std::optional<RetryPolicy>& retry,
                       const std::function<void(JobStatus)>& on_status) {
  UPDEC_TRACE_SCOPE("serve/run_scenario");
  const RetryPolicy policy = retry ? *retry : retry_policy_from_env();
  const double effective_deadline_ms =
      scenario.deadline_ms > 0.0 ? scenario.deadline_ms : deadline_ms;
  const auto start = std::chrono::steady_clock::now();
  const Stopwatch watch;
  const auto notify = [&](JobStatus s) {
    if (on_status) on_status(s);
  };
  notify(JobStatus::kRunning);

  // Backoff jitter is drawn from the job's own seeded stream (never a
  // global one) so chaos runs replay bit-identically.
  Rng jitter_rng(scenario.seed ^ 0xB0FFC0FFEE5EEDull);

  JobReport report;
  std::size_t attempts = 0;
  std::size_t retries_taken = 0;
  for (;;) {
    ++attempts;
    report = run_attempt(scenario, cache, effective_deadline_ms, start,
                         external_stop, policy, /*degraded_attempt=*/false);
    if (report.status != JobStatus::kFailed) break;  // resolved, one way or another

    // Transient failure. First spend the retry budget...
    if (retries_taken < policy.max_retries) {
      double delay_ms = std::min(
          policy.backoff_ms *
              std::pow(policy.backoff_multiplier,
                       static_cast<double>(retries_taken)),
          policy.max_backoff_ms);
      delay_ms = std::max(
          0.0, delay_ms * (1.0 + policy.jitter * jitter_rng.uniform(-1., 1.)));
      const double remaining_ms =
          effective_deadline_ms > 0.0
              ? effective_deadline_ms - elapsed_ms_since(start)
              : std::numeric_limits<double>::infinity();
      if (delay_ms >= remaining_ms) {
        // The backoff alone would blow the deadline: stop deterministically
        // instead of spinning into it.
        report.status = JobStatus::kDeadlineExpired;
        report.error = "retry budget exceeds deadline: " + report.error;
        UPDEC_METRIC_ADD("serve/jobs.gave_up", 1);
        log_warn() << "serve job '" << report.id
                   << "': no deadline budget for retry " << retries_taken + 1
                   << "; giving up";
        break;
      }
      ++retries_taken;
      UPDEC_METRIC_ADD("serve/jobs.retries", 1);
      log_info() << "serve job '" << report.id << "': attempt " << attempts
                 << " failed (" << report.error << "); retry "
                 << retries_taken << "/" << policy.max_retries << " in "
                 << delay_ms << " ms";
      notify(JobStatus::kRetrying);
      if (!backoff_sleep(delay_ms, external_stop)) {
        report.status = JobStatus::kCancelled;
        report.error.clear();
        break;
      }
      notify(JobStatus::kRunning);
      continue;
    }

    // ...then, budget gone, degrade rather than hard-fail if allowed.
    if (policy.allow_degraded) {
      ++attempts;
      JobReport degraded =
          run_attempt(scenario, cache, effective_deadline_ms, start,
                      external_stop, policy, /*degraded_attempt=*/true);
      if (degraded.status == JobStatus::kSucceeded) {
        log_warn() << "serve job '" << report.id
                   << "': degraded best-effort result after " << attempts
                   << " attempts (grad norm " << degraded.achieved_tolerance
                   << ")";
        report = std::move(degraded);
        break;
      }
      if (degraded.status != JobStatus::kFailed) {
        report = std::move(degraded);  // cancelled / deadline during fallback
        break;
      }
      report.error += "; degraded fallback also failed: " + degraded.error;
    }
    UPDEC_METRIC_ADD("serve/jobs.gave_up", 1);
    break;  // kFailed stands
  }

  report.attempts = attempts;
  report.retries = retries_taken;
  report.seconds = watch.seconds();
  if (metrics::enabled()) {
    metrics::observe("serve/job.seconds", report.seconds);
    if (report.degraded) metrics::counter_add("serve/jobs.degraded");
    switch (report.status) {
      case JobStatus::kSucceeded:
        metrics::counter_add("serve/jobs.succeeded");
        break;
      case JobStatus::kCancelled:
        metrics::counter_add("serve/jobs.cancelled");
        break;
      case JobStatus::kDeadlineExpired:
        metrics::counter_add("serve/jobs.deadline_expired");
        break;
      default:
        metrics::counter_add("serve/jobs.failed");
        break;
    }
  }
  if (report.status == JobStatus::kFailed)
    log_warn() << "serve job '" << report.id << "' failed after "
               << report.attempts << " attempts: " << report.error;
  return report;
}

Scheduler::Scheduler(SchedulerOptions options)
    : cache_(options.cache != nullptr ? options.cache : &global_cache()),
      default_deadline_ms_(options.default_deadline_ms < 0.0
                               ? default_deadline_ms_from_env()
                               : options.default_deadline_ms),
      retry_(options.retry ? *options.retry : retry_policy_from_env()) {
  const std::size_t n_shards =
      options.shards ? *options.shards : shards_from_env();
  if (n_shards > 0) {
    // Shard mode: fork the worker processes FIRST (ShardPool's constructor
    // forks before starting any thread), then wire results back into the
    // promise/completion-queue machinery.
    ShardOptions shard_options;
    shard_options.shards = n_shards;
    shard_options.default_deadline_ms = default_deadline_ms_;
    shard_options.retry = retry_;
    shards_ = std::make_unique<ShardPool>(shard_options);
    shards_->set_on_result([this](std::size_t shard_job, JobReport&& report) {
      std::shared_ptr<JobState> state;
      JobId id = 0;
      {
        std::lock_guard lock(jobs_mutex_);
        const auto it = shard_to_job_.find(shard_job);
        if (it == shard_to_job_.end()) return;
        id = it->second;
        state = jobs_.at(id);
      }
      finish_job(id, state, std::move(report));
    });
    shards_->set_on_status([this](std::size_t shard_job, JobStatus live) {
      std::lock_guard lock(jobs_mutex_);
      const auto it = shard_to_job_.find(shard_job);
      if (it == shard_to_job_.end()) return;
      jobs_.at(it->second)->live.store(live, std::memory_order_relaxed);
    });
  } else {
    pool_ = std::make_unique<ThreadPool>(options.threads, options.max_queue);
  }
}

Scheduler::~Scheduler() {
  if (pool_) pool_->shutdown();
  shards_.reset();  // drains + reaps workers
}

void Scheduler::finish_job(JobId id, const std::shared_ptr<JobState>& state,
                           JobReport&& report) {
  state->live.store(report.status, std::memory_order_relaxed);
  state->done.store(true, std::memory_order_release);
  JobReport copy = report;
  state->promise.set_value(std::move(report));
  {
    std::lock_guard lock(jobs_mutex_);
    completed_.emplace_back(id, std::move(copy));
    if (unstreamed_ > 0) --unstreamed_;
  }
  completed_cv_.notify_all();
}

Scheduler::JobId Scheduler::submit(Scenario scenario) {
  auto state = std::make_shared<JobState>();
  state->scenario = std::move(scenario);
  state->future = state->promise.get_future().share();
  JobId id = 0;
  {
    std::lock_guard lock(jobs_mutex_);
    id = next_id_++;
    jobs_.emplace(id, state);
    ++unstreamed_;
    if (shards_) {
      // Register the mapping under the lock: the dispatcher's result
      // callback blocks on it until we are done, so a fast completion can
      // never miss its JobId.
      state->shard_job = shards_->submit(state->scenario);
      shard_to_job_.emplace(state->shard_job, id);
    }
  }
  UPDEC_METRIC_ADD("serve/jobs.submitted", 1);
  if (shards_) return id;
  pool_->submit([this, id, state, deadline = default_deadline_ms_,
                 cache = cache_, retry = retry_] {
    JobReport report;
    if (state->cancelled.load(std::memory_order_relaxed)) {
      // Cancelled before it ever ran: resolve without building anything.
      report.id = state->scenario.id;
      report.status = JobStatus::kCancelled;
      UPDEC_METRIC_ADD("serve/jobs.cancelled", 1);
    } else {
      report = run_scenario(
          state->scenario, *cache, deadline,
          [state] {
            return state->cancelled.load(std::memory_order_relaxed);
          },
          retry,
          [state](JobStatus live) {
            state->live.store(live, std::memory_order_relaxed);
          });
    }
    finish_job(id, state, std::move(report));
  });
  return id;
}

JobStatus Scheduler::status(JobId id) const {
  std::lock_guard lock(jobs_mutex_);
  const auto it = jobs_.find(id);
  UPDEC_REQUIRE(it != jobs_.end(), "Scheduler::status: unknown job id");
  return it->second->live.load(std::memory_order_relaxed);
}

bool Scheduler::cancel(JobId id) {
  std::shared_ptr<JobState> state;
  {
    std::lock_guard lock(jobs_mutex_);
    const auto it = jobs_.find(id);
    if (it == jobs_.end()) return false;
    state = it->second;
  }
  state->cancelled.store(true, std::memory_order_relaxed);
  if (shards_) {
    // The pool resolves a queued job right here (through the result
    // callback) or ships a kCancel frame to the owning worker.
    return shards_->cancel(state->shard_job);
  }
  return !state->done.load(std::memory_order_acquire);
}

std::optional<std::pair<Scheduler::JobId, JobReport>>
Scheduler::try_next_completed() {
  std::lock_guard lock(jobs_mutex_);
  if (completed_.empty()) return std::nullopt;
  auto out = std::move(completed_.front());
  completed_.pop_front();
  return out;
}

std::optional<std::pair<Scheduler::JobId, JobReport>>
Scheduler::next_completed() {
  std::unique_lock lock(jobs_mutex_);
  completed_cv_.wait(lock, [this] {
    return !completed_.empty() || unstreamed_ == 0;
  });
  if (completed_.empty()) return std::nullopt;
  auto out = std::move(completed_.front());
  completed_.pop_front();
  return out;
}

std::size_t Scheduler::shard_count() const {
  return shards_ ? shards_->shard_count() : 0;
}

OperatorCache::Stats Scheduler::cache_stats() {
  OperatorCache::Stats stats = cache_->stats();
  if (!shards_) return stats;
  const OperatorCache::Stats workers = shards_->collect_stats();
  stats.hits += workers.hits;
  stats.misses += workers.misses;
  stats.evictions += workers.evictions;
  stats.inflight_waits += workers.inflight_waits;
  stats.bytes += workers.bytes;
  stats.entries += workers.entries;
  stats.byte_budget = std::max(stats.byte_budget, workers.byte_budget);
  for (const auto& [name, cs] : workers.by_class) {
    OperatorCache::ClassStats& out = stats.by_class[name];
    out.hits += cs.hits;
    out.misses += cs.misses;
    out.evictions += cs.evictions;
    out.bytes += cs.bytes;
    out.entries += cs.entries;
  }
  stats.disk.hits += workers.disk.hits;
  stats.disk.misses += workers.disk.misses;
  stats.disk.writes += workers.disk.writes;
  stats.disk.corrupt += workers.disk.corrupt;
  stats.disk.errors += workers.disk.errors;
  return stats;
}

JobReport Scheduler::wait(JobId id) {
  std::shared_future<JobReport> future;
  {
    std::lock_guard lock(jobs_mutex_);
    const auto it = jobs_.find(id);
    UPDEC_REQUIRE(it != jobs_.end(), "Scheduler::wait: unknown job id");
    future = it->second->future;
  }
  return future.get();
}

std::vector<JobReport> Scheduler::wait_all() {
  std::vector<std::shared_future<JobReport>> futures;
  {
    std::lock_guard lock(jobs_mutex_);
    futures.reserve(jobs_.size());
    for (const auto& [id, state] : jobs_) futures.push_back(state->future);
  }
  std::vector<JobReport> reports;
  reports.reserve(futures.size());
  for (auto& f : futures) reports.push_back(f.get());
  return reports;
}

}  // namespace updec::serve
