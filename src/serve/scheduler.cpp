#include "serve/scheduler.hpp"

#include <chrono>
#include <cstdlib>
#include <exception>
#include <utility>

#include "control/channel_problem.hpp"
#include "control/driver.hpp"
#include "control/laplace_problem.hpp"
#include "pointcloud/generators.hpp"
#include "util/error.hpp"
#include "util/log.hpp"
#include "util/metrics.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"
#include "util/trace.hpp"

namespace updec::serve {

const char* to_string(ProblemKind kind) {
  switch (kind) {
    case ProblemKind::kLaplace: return "laplace";
    case ProblemKind::kChannel: return "channel";
  }
  return "?";
}

const char* to_string(Strategy strategy) {
  switch (strategy) {
    case Strategy::kDp: return "dp";
    case Strategy::kDal: return "dal";
    case Strategy::kFd: return "fd";
  }
  return "?";
}

const char* to_string(JobStatus status) {
  switch (status) {
    case JobStatus::kPending: return "pending";
    case JobStatus::kRunning: return "running";
    case JobStatus::kSucceeded: return "succeeded";
    case JobStatus::kCancelled: return "cancelled";
    case JobStatus::kDeadlineExpired: return "deadline_expired";
    case JobStatus::kFailed: return "failed";
  }
  return "?";
}

ProblemKind parse_problem_kind(const std::string& s) {
  if (s == "laplace") return ProblemKind::kLaplace;
  if (s == "channel" || s == "navier-stokes") return ProblemKind::kChannel;
  throw Error("unknown problem kind '" + s + "' (want laplace|channel)");
}

Strategy parse_strategy(const std::string& s) {
  if (s == "dp") return Strategy::kDp;
  if (s == "dal") return Strategy::kDal;
  if (s == "fd") return Strategy::kFd;
  throw Error("unknown strategy '" + s + "' (want dp|dal|fd)");
}

double default_deadline_ms_from_env() {
  if (const char* env = std::getenv("UPDEC_SERVE_DEADLINE_MS")) {
    char* end = nullptr;
    const double v = std::strtod(env, &end);
    if (end != env && v > 0.0) return v;
  }
  return 0.0;
}

namespace {

/// Everything a Laplace scenario family shares: the kernel, the assembled
/// problem (collocation + flux operators) and -- via memoize_lu -- the
/// factorisation. Immutable after construction, so one bundle serves any
/// number of concurrent jobs (GlobalCollocation's lazy LU is mutex-guarded,
/// and each DP strategy instance owns its private tape).
struct LaplaceBundle {
  std::unique_ptr<const rbf::Kernel> kernel;
  std::shared_ptr<control::LaplaceControlProblem> problem;
};

std::shared_ptr<const LaplaceBundle> laplace_bundle(OperatorCache& cache,
                                                    const Scenario& sc) {
  const rbf::PolyharmonicSpline probe_kernel(3);
  KeyBuilder kb("laplace-bundle");
  kb.add(static_cast<std::uint64_t>(sc.grid_n));
  kb.add(static_cast<std::int64_t>(sc.poly_degree));
  kb.add(fingerprint(probe_kernel));
  return cache.get_or_compute<LaplaceBundle>(kb.key(), [&cache, &sc] {
    UPDEC_TRACE_SCOPE("serve/build_laplace_bundle");
    auto bundle = std::make_shared<LaplaceBundle>();
    bundle->kernel = std::make_unique<rbf::PolyharmonicSpline>(3);
    bundle->problem = std::make_shared<control::LaplaceControlProblem>(
        sc.grid_n, *bundle->kernel, sc.poly_degree);
    // Level 2: the factorisation is ALSO cached under the matrix content
    // hash, so it survives bundle eviction and is shared with any other
    // bundle whose collocation matrix is bit-identical.
    memoize_lu(cache, bundle->problem->solver().collocation());
    const std::size_t ss =
        bundle->problem->solver().collocation().system_size();
    // Dominant storage: collocation matrix + flux/evaluation operators +
    // the (separately accounted but bundle-pinned) LU.
    return OperatorCache::Sized<LaplaceBundle>{
        std::move(bundle), 3 * ss * ss * sizeof(double)};
  });
}

/// A built job: the strategy plus whatever owns the problem's lifetime.
struct Built {
  std::shared_ptr<const control::ControlProblem> problem;
  std::unique_ptr<control::GradientStrategy> strategy;
  std::shared_ptr<const void> keepalive;
};

/// Channel problems are built per job (the projection solver caches state
/// internally and is not documented concurrency-safe), so only hold the
/// kernel + problem together.
struct ChannelHolder {
  rbf::PolyharmonicSpline kernel{3};
  std::shared_ptr<control::ChannelFlowControlProblem> problem;
};

Built build_job(const Scenario& sc, OperatorCache& cache) {
  Built built;
  if (sc.problem == ProblemKind::kLaplace) {
    std::shared_ptr<const LaplaceBundle> bundle = laplace_bundle(cache, sc);
    std::shared_ptr<const control::LaplaceControlProblem> problem =
        bundle->problem;
    switch (sc.strategy) {
      case Strategy::kDp:
        built.strategy = control::make_laplace_dp(problem);
        break;
      case Strategy::kDal:
        built.strategy = control::make_laplace_dal(problem);
        break;
      case Strategy::kFd:
        built.strategy = control::make_laplace_fd(problem, sc.fd_step);
        break;
    }
    built.problem = problem;
    built.keepalive = bundle;
  } else {
    auto holder = std::make_shared<ChannelHolder>();
    pc::ChannelSpec spec;
    spec.target_nodes = sc.target_nodes;
    pde::ChannelFlowConfig config;
    config.reynolds = sc.reynolds;
    holder->problem = std::make_shared<control::ChannelFlowControlProblem>(
        spec, holder->kernel, config);
    std::shared_ptr<const control::ChannelFlowControlProblem> problem =
        holder->problem;
    switch (sc.strategy) {
      case Strategy::kDp:
        built.strategy = control::make_channel_dp(problem);
        break;
      case Strategy::kDal:
        built.strategy = control::make_channel_dal(problem);
        break;
      case Strategy::kFd:
        built.strategy = control::make_channel_fd(problem);
        break;
    }
    built.problem = problem;
    built.keepalive = holder;
  }
  return built;
}

}  // namespace

JobReport run_scenario(const Scenario& scenario, OperatorCache& cache,
                       double deadline_ms,
                       const std::function<bool()>& external_stop) {
  UPDEC_TRACE_SCOPE("serve/run_scenario");
  JobReport report;
  report.id = scenario.id;
  report.status = JobStatus::kRunning;
  const Stopwatch watch;

  // The deadline and cancellation are observed cooperatively from
  // should_stop, which runs on this thread inside the driver loop, so
  // plain captured flags suffice to record which trigger fired.
  const double effective_deadline_ms =
      scenario.deadline_ms > 0.0 ? scenario.deadline_ms : deadline_ms;
  const auto start = std::chrono::steady_clock::now();
  bool cancelled = false;
  bool deadline_expired = false;

  try {
    Built built = build_job(scenario, cache);

    la::Vector control = built.problem->initial_control();
    if (scenario.control_jitter > 0.0) {
      Rng rng(scenario.seed ? scenario.seed : 0x9E3779B97F4A7C15ull);
      for (std::size_t i = 0; i < control.size(); ++i)
        control[i] += rng.normal(0.0, scenario.control_jitter);
    }

    control::DriverOptions options;
    options.iterations = scenario.iterations;
    options.initial_learning_rate = scenario.learning_rate;
    options.should_stop = [&]() {
      if (external_stop && external_stop()) {
        cancelled = true;
        return true;
      }
      if (effective_deadline_ms > 0.0) {
        const auto elapsed = std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - start);
        if (elapsed.count() >= effective_deadline_ms) {
          deadline_expired = true;
          return true;
        }
      }
      return false;
    };

    control::DriverResult result =
        control::optimize_from(std::move(control), *built.strategy, options);

    report.final_cost = result.final_cost;
    report.iterations = result.iterations;
    report.cost_history = std::move(result.cost_history);
    if (result.aborted) {
      report.status = JobStatus::kFailed;
      report.error = "divergence recovery budget exhausted";
    } else if (cancelled) {
      report.status = JobStatus::kCancelled;
    } else if (deadline_expired) {
      report.status = JobStatus::kDeadlineExpired;
    } else {
      report.status = JobStatus::kSucceeded;
    }
  } catch (const std::exception& e) {
    report.status = JobStatus::kFailed;
    report.error = e.what();
  } catch (...) {
    report.status = JobStatus::kFailed;
    report.error = "unknown exception";
  }

  report.seconds = watch.seconds();
  if (metrics::enabled()) {
    metrics::observe("serve/job.seconds", report.seconds);
    switch (report.status) {
      case JobStatus::kSucceeded:
        metrics::counter_add("serve/jobs.succeeded");
        break;
      case JobStatus::kCancelled:
        metrics::counter_add("serve/jobs.cancelled");
        break;
      case JobStatus::kDeadlineExpired:
        metrics::counter_add("serve/jobs.deadline_expired");
        break;
      default:
        metrics::counter_add("serve/jobs.failed");
        break;
    }
  }
  if (report.status == JobStatus::kFailed)
    log_warn() << "serve job '" << report.id << "' failed: " << report.error;
  return report;
}

Scheduler::Scheduler(SchedulerOptions options)
    : cache_(options.cache != nullptr ? options.cache : &global_cache()),
      default_deadline_ms_(options.default_deadline_ms < 0.0
                               ? default_deadline_ms_from_env()
                               : options.default_deadline_ms),
      pool_(options.threads, options.max_queue) {}

Scheduler::~Scheduler() { pool_.shutdown(); }

Scheduler::JobId Scheduler::submit(Scenario scenario) {
  auto state = std::make_shared<JobState>();
  state->scenario = std::move(scenario);
  state->future = state->promise.get_future().share();
  JobId id = 0;
  {
    std::lock_guard lock(jobs_mutex_);
    id = next_id_++;
    jobs_.emplace(id, state);
  }
  UPDEC_METRIC_ADD("serve/jobs.submitted", 1);
  pool_.submit([state, deadline = default_deadline_ms_, cache = cache_] {
    JobReport report;
    if (state->cancelled.load(std::memory_order_relaxed)) {
      // Cancelled before it ever ran: resolve without building anything.
      report.id = state->scenario.id;
      report.status = JobStatus::kCancelled;
      UPDEC_METRIC_ADD("serve/jobs.cancelled", 1);
    } else {
      report = run_scenario(state->scenario, *cache, deadline, [state] {
        return state->cancelled.load(std::memory_order_relaxed);
      });
    }
    state->done.store(true, std::memory_order_release);
    state->promise.set_value(std::move(report));
  });
  return id;
}

bool Scheduler::cancel(JobId id) {
  std::shared_ptr<JobState> state;
  {
    std::lock_guard lock(jobs_mutex_);
    const auto it = jobs_.find(id);
    if (it == jobs_.end()) return false;
    state = it->second;
  }
  state->cancelled.store(true, std::memory_order_relaxed);
  return !state->done.load(std::memory_order_acquire);
}

JobReport Scheduler::wait(JobId id) {
  std::shared_future<JobReport> future;
  {
    std::lock_guard lock(jobs_mutex_);
    const auto it = jobs_.find(id);
    UPDEC_REQUIRE(it != jobs_.end(), "Scheduler::wait: unknown job id");
    future = it->second->future;
  }
  return future.get();
}

std::vector<JobReport> Scheduler::wait_all() {
  std::vector<std::shared_future<JobReport>> futures;
  {
    std::lock_guard lock(jobs_mutex_);
    futures.reserve(jobs_.size());
    for (const auto& [id, state] : jobs_) futures.push_back(state->future);
  }
  std::vector<JobReport> reports;
  reports.reserve(futures.size());
  for (auto& f : futures) reports.push_back(f.get());
  return reports;
}

}  // namespace updec::serve
