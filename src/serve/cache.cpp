#include "serve/cache.hpp"

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <utility>

#include "util/env.hpp"
#include "util/error.hpp"
#include "util/log.hpp"
#include "util/metrics.hpp"
#include "util/trace.hpp"

namespace updec::serve {

namespace {

constexpr std::uint64_t kFnvPrime = 1099511628211ULL;
constexpr std::uint64_t kFnvBasisLo = 14695981039346656037ULL;
// Second lane: same prime, independent starting state, so the lanes walk
// different orbits over identical input bytes.
constexpr std::uint64_t kFnvBasisHi = kFnvBasisLo ^ 0x9e3779b97f4a7c15ULL;

std::uint64_t fnv1a(std::uint64_t h, const unsigned char* p, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
  return h;
}

/// Single-lane FNV-1a over raw bytes, for the std::uint64_t fingerprints.
class Fnv {
 public:
  Fnv& bytes(const void* data, std::size_t n) {
    h_ = fnv1a(h_, static_cast<const unsigned char*>(data), n);
    return *this;
  }
  Fnv& u64(std::uint64_t v) { return bytes(&v, sizeof v); }
  Fnv& f64(double v) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof bits);
    return u64(bits);
  }
  Fnv& str(std::string_view s) {
    u64(s.size());
    return bytes(s.data(), s.size());
  }
  [[nodiscard]] std::uint64_t value() const { return h_ ? h_ : 1; }

 private:
  std::uint64_t h_ = kFnvBasisLo;
};

}  // namespace

KeyBuilder::KeyBuilder(std::string_view domain)
    : hi_(kFnvBasisHi), lo_(kFnvBasisLo) {
  add(domain);
}

KeyBuilder& KeyBuilder::add_bytes(const void* data, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  lo_ = fnv1a(lo_, p, n);
  hi_ = fnv1a(hi_, p, n);
  return *this;
}

KeyBuilder& KeyBuilder::add(std::uint64_t v) {
  return add_bytes(&v, sizeof v);
}

KeyBuilder& KeyBuilder::add(double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof bits);
  return add(bits);
}

KeyBuilder& KeyBuilder::add(std::string_view s) {
  add(static_cast<std::uint64_t>(s.size()));
  return add_bytes(s.data(), s.size());
}

std::uint64_t fingerprint(const pc::PointCloud& cloud) {
  Fnv h;
  h.u64(cloud.size());
  for (const pc::Node& n : cloud.nodes()) {
    h.f64(n.pos.x).f64(n.pos.y);
    h.u64(static_cast<std::uint64_t>(n.kind));
    h.f64(n.normal.x).f64(n.normal.y);
    h.u64(static_cast<std::uint64_t>(static_cast<std::int64_t>(n.tag)));
  }
  return h.value();
}

std::uint64_t fingerprint(const rbf::Kernel& kernel) {
  // Probe radii span the [0, O(1)] range a unit-domain collocation sees;
  // irrational-ish spacing avoids accidental symmetry (e.g. even kernels
  // sampled only at integers).
  static constexpr double kProbes[] = {0.0,  0.125, 0.31830988618,
                                       0.5,  0.7071067811865476,
                                       1.0,  1.61803398875, 2.718281828459045};
  Fnv h;
  h.str(kernel.name());
  for (const double r : kProbes) {
    h.f64(kernel.phi(r)).f64(kernel.dphi(r)).f64(kernel.d2phi(r));
  }
  return h.value();
}

std::uint64_t fingerprint(const la::Matrix& m) {
  Fnv h;
  h.u64(m.rows()).u64(m.cols());
  h.bytes(m.data(), m.rows() * m.cols() * sizeof(double));
  return h.value();
}

std::uint64_t fingerprint(const la::CsrMatrix& m) {
  Fnv h;
  h.u64(m.rows()).u64(m.cols()).u64(m.nnz());
  h.bytes(m.row_ptr().data(), m.row_ptr().size() * sizeof(std::size_t));
  h.bytes(m.col_idx().data(), m.col_idx().size() * sizeof(std::size_t));
  h.bytes(m.values().data(), m.values().size() * sizeof(double));
  return h.value();
}

std::uint64_t fingerprint(const rbf::LinearOp& op) {
  Fnv h;
  h.f64(op.id).f64(op.ddx).f64(op.ddy).f64(op.lap);
  return h.value();
}

std::size_t byte_budget_from_env() {
  // Strict whole-string parse: "512MB" used to silently become 512 bytes
  // under strtoull's prefix rules; now it warns and keeps the default.
  return static_cast<std::size_t>(
      env::get_u64("UPDEC_CACHE_BYTES", std::uint64_t{512} << 20));
}

OperatorCache::OperatorCache(std::size_t byte_budget, std::string disk_dir)
    : byte_budget_(byte_budget) {
  stats_.byte_budget = byte_budget;
  if (!disk_dir.empty())
    disk_ = std::make_unique<DiskCache>(std::move(disk_dir));
}

void OperatorCache::rearm_disk(std::string dir) {
  std::lock_guard lock(mutex_);
  disk_ = dir.empty() ? nullptr : std::make_unique<DiskCache>(std::move(dir));
}

bool OperatorCache::contains(const CacheKey& key) const {
  std::lock_guard lock(mutex_);
  return index_.count(key) != 0;
}

void OperatorCache::clear() {
  std::lock_guard lock(mutex_);
  // In-flight computes are untouched: their futures complete normally, the
  // results just land in an empty table.
  lru_.clear();
  index_.clear();
  bytes_ = 0;
  stats_.bytes = 0;
  stats_.entries = 0;
  for (auto& [klass, cs] : stats_.by_class) {
    cs.bytes = 0;
    cs.entries = 0;
  }
}

OperatorCache::Stats OperatorCache::stats() const {
  Stats s;
  DiskCache* disk = nullptr;
  {
    std::lock_guard lock(mutex_);
    s = stats_;
    s.bytes = bytes_;
    s.entries = index_.size();
    s.byte_budget = byte_budget_;
    disk = disk_.get();  // pointer read racing rearm_disk() stays ordered
  }
  if (disk) s.disk = disk->stats();  // DiskCache locks its own mutex
  return s;
}

void OperatorCache::erase_locked(std::list<Entry>::iterator it) {
  bytes_ -= it->bytes;
  ClassStats& cs = stats_.by_class[it->klass];
  cs.bytes -= it->bytes;
  --cs.entries;
  index_.erase(it->key);
  lru_.erase(it);
}

void OperatorCache::store_locked(const CacheKey& key, const Computed& computed,
                                 const char* klass) {
  if (byte_budget_ == 0 || computed.bytes > byte_budget_) return;
  if (index_.count(key) != 0) return;  // raced with an identical insert
  lru_.push_front(Entry{key, computed.value, computed.bytes, klass});
  index_.emplace(key, lru_.begin());
  bytes_ += computed.bytes;
  {
    ClassStats& cs = stats_.by_class[lru_.front().klass];
    cs.bytes += computed.bytes;
    ++cs.entries;
  }
  while (bytes_ > byte_budget_ && !lru_.empty()) {
    const auto victim = std::prev(lru_.end());
    ++stats_.by_class[victim->klass].evictions;
    erase_locked(victim);
    ++stats_.evictions;
    UPDEC_METRIC_ADD("serve/cache.evictions", 1);
  }
  UPDEC_METRIC_GAUGE_SET("serve/cache.bytes", static_cast<double>(bytes_));
}

std::shared_ptr<const void> OperatorCache::get_or_compute_erased(
    const CacheKey& key, const std::function<Computed()>& compute,
    const char* klass) {
  std::shared_future<Computed> wait_on;
  std::promise<Computed> mine;
  {
    std::unique_lock lock(mutex_);
    if (const auto it = index_.find(key); it != index_.end()) {
      // Hit: refresh LRU position, hand out the shared value.
      lru_.splice(lru_.begin(), lru_, it->second);
      ++stats_.hits;
      ++stats_.by_class[klass].hits;
      UPDEC_METRIC_ADD("serve/cache.hits", 1);
      return it->second->value;
    }
    if (const auto it = inflight_.find(key); it != inflight_.end()) {
      // Someone else is computing this key: join their flight.
      wait_on = it->second;
      ++stats_.inflight_waits;
      UPDEC_METRIC_ADD("serve/cache.inflight_waits", 1);
    } else {
      inflight_.emplace(key, mine.get_future().share());
      ++stats_.misses;
      ++stats_.by_class[klass].misses;
      UPDEC_METRIC_ADD("serve/cache.misses", 1);
    }
  }

  if (wait_on.valid()) return wait_on.get().value;  // rethrows leader errors

  // We are the leader: compute outside the lock.
  Computed computed;
  try {
    computed = compute();
  } catch (...) {
    {
      std::lock_guard lock(mutex_);
      inflight_.erase(key);
    }
    mine.set_exception(std::current_exception());
    throw;
  }
  UPDEC_REQUIRE(computed.value != nullptr,
                "OperatorCache compute returned a null value");
  {
    std::lock_guard lock(mutex_);
    inflight_.erase(key);
    store_locked(key, computed, klass);
  }
  mine.set_value(computed);
  return computed.value;
}

std::shared_ptr<const void> OperatorCache::try_get_erased(
    const CacheKey& key,
    const std::function<Computed(std::string_view)>& decode,
    const char* klass) {
  {
    std::unique_lock lock(mutex_);
    if (const auto it = index_.find(key); it != index_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second);
      ++stats_.hits;
      ++stats_.by_class[klass].hits;
      UPDEC_METRIC_ADD("serve/cache.hits", 1);
      return it->second->value;
    }
    ++stats_.misses;
    ++stats_.by_class[klass].misses;
    UPDEC_METRIC_ADD("serve/cache.misses", 1);
  }
  if (!decode || disk_ == nullptr || !disk_->enabled()) return nullptr;
  std::string payload;
  if (!disk_->load(key, payload)) return nullptr;
  Computed computed;
  try {
    computed = decode(std::string_view(payload));
  } catch (const std::exception& e) {
    disk_->reject(key, e.what());
    return nullptr;
  }
  if (computed.value == nullptr) return nullptr;
  {
    std::lock_guard lock(mutex_);
    // Promote the disk entry into the LRU (another thread may have raced a
    // put() in; store_locked then keeps the resident entry).
    store_locked(key, computed, klass);
  }
  return computed.value;
}

void OperatorCache::put_erased(const CacheKey& key, Computed computed,
                               const std::function<std::string()>& encode,
                               const char* klass) {
  UPDEC_REQUIRE(computed.value != nullptr,
                "OperatorCache::put: null value");
  {
    std::lock_guard lock(mutex_);
    if (const auto it = index_.find(key); it != index_.end())
      erase_locked(it->second);  // replacement, not an eviction
    store_locked(key, computed, klass);
  }
  if (encode && disk_ != nullptr && disk_->enabled())
    disk_->store(key, encode());  // atomic overwrite (tmp + rename)
}

OperatorCache& global_cache() {
  // Leaked: jobs may still touch the cache from atexit dump paths.
  static OperatorCache* cache = new OperatorCache();
  return *cache;
}

std::size_t lu_bytes(const la::LuFactorization& lu) {
  const std::size_t n = lu.size();
  return n * n * sizeof(double) + n * sizeof(std::size_t);
}

// ---- disk-tier codecs ----------------------------------------------------

namespace {

/// Append-only little binary writer for the artefact payloads.
class PayloadWriter {
 public:
  void u64(std::uint64_t v) { bytes(&v, sizeof v); }
  void f64(double v) { bytes(&v, sizeof v); }
  void f64s(const double* data, std::size_t n) {
    bytes(data, n * sizeof(double));
  }
  void f32s(const float* data, std::size_t n) {
    bytes(data, n * sizeof(float));
  }
  void indices(const std::vector<std::size_t>& v) {
    u64(v.size());
    for (const std::size_t x : v) u64(x);
  }
  [[nodiscard]] std::string take() { return std::move(buf_); }

 private:
  void bytes(const void* data, std::size_t n) {
    buf_.append(static_cast<const char*>(data), n);
  }
  std::string buf_;
};

/// Bounds-checked reader; any overrun or leftover is a malformed payload
/// (updec::Error), which the disk tier treats as corruption.
class PayloadReader {
 public:
  explicit PayloadReader(std::string_view payload) : payload_(payload) {}

  std::uint64_t u64() {
    std::uint64_t v = 0;
    bytes(&v, sizeof v);
    return v;
  }
  double f64() {
    double v = 0;
    bytes(&v, sizeof v);
    return v;
  }
  void f64s(double* out, std::size_t n) { bytes(out, n * sizeof(double)); }
  void f32s(float* out, std::size_t n) { bytes(out, n * sizeof(float)); }
  std::vector<std::size_t> indices(std::size_t expected) {
    const std::uint64_t n = u64();
    UPDEC_REQUIRE(n == expected, "disk payload: index array size mismatch");
    std::vector<std::size_t> v(expected);
    for (std::size_t i = 0; i < expected; ++i)
      v[i] = static_cast<std::size_t>(u64());
    return v;
  }
  void done() const {
    UPDEC_REQUIRE(pos_ == payload_.size(),
                  "disk payload: trailing bytes after decode");
  }

 private:
  void bytes(void* out, std::size_t n) {
    UPDEC_REQUIRE(pos_ + n <= payload_.size(),
                  "disk payload: truncated field");
    std::memcpy(out, payload_.data() + pos_, n);
    pos_ += n;
  }
  std::string_view payload_;
  std::size_t pos_ = 0;
};

}  // namespace

std::string encode_lu(const la::LuFactorization& lu) {
  PayloadWriter w;
  const std::size_t n = lu.size();
  w.u64(n);
  w.f64s(lu.packed().data(), n * n);
  w.indices(lu.permutation());
  w.u64(lu.permutation_sign() == 1 ? 1 : 0);
  w.f64(lu.source_norm1());
  return w.take();
}

la::LuFactorization decode_lu(std::string_view payload) {
  PayloadReader r(payload);
  const std::size_t n = static_cast<std::size_t>(r.u64());
  la::Matrix packed(n, n);
  r.f64s(packed.data(), n * n);
  std::vector<std::size_t> perm = r.indices(n);
  const int sign = r.u64() == 1 ? 1 : -1;
  const double a_norm1 = r.f64();
  r.done();
  return la::LuFactorization::from_parts(std::move(packed), std::move(perm),
                                         sign, a_norm1);
}

std::string encode_csr(const la::CsrMatrix& m) {
  PayloadWriter w;
  w.u64(m.rows());
  w.u64(m.cols());
  w.u64(m.nnz());
  w.indices(m.row_ptr());
  w.indices(m.col_idx());
  w.f64s(m.values().data(), m.values().size());
  return w.take();
}

la::CsrMatrix decode_csr(std::string_view payload) {
  PayloadReader r(payload);
  const std::size_t rows = static_cast<std::size_t>(r.u64());
  const std::size_t cols = static_cast<std::size_t>(r.u64());
  const std::size_t nnz = static_cast<std::size_t>(r.u64());
  std::vector<std::size_t> row_ptr = r.indices(rows + 1);
  std::vector<std::size_t> col_idx = r.indices(nnz);
  std::vector<double> values(nnz);
  r.f64s(values.data(), nnz);
  r.done();
  UPDEC_REQUIRE(!row_ptr.empty() && row_ptr.front() == 0 &&
                    row_ptr.back() == nnz,
                "disk payload: inconsistent CSR row pointers");
  for (std::size_t i = 0; i + 1 < row_ptr.size(); ++i)
    UPDEC_REQUIRE(row_ptr[i] <= row_ptr[i + 1],
                  "disk payload: CSR row pointers not monotone");
  for (const std::size_t c : col_idx)
    UPDEC_REQUIRE(c < cols, "disk payload: CSR column index out of range");
  return la::CsrMatrix(rows, cols, std::move(row_ptr), std::move(col_idx),
                       std::move(values));
}

std::string encode_ilu0(const la::Ilu0& ilu) {
  return encode_csr(ilu.factors());
}

la::Ilu0 decode_ilu0(std::string_view payload) {
  return la::Ilu0::from_factors(decode_csr(payload));
}

std::string encode_ilu0_f32(const la::Ilu0& ilu) {
  const la::CsrMatrix& lu = ilu.factors();
  PayloadWriter w;
  w.u64(lu.rows());
  w.u64(lu.cols());
  w.u64(lu.nnz());
  w.indices(lu.row_ptr());
  w.indices(lu.col_idx());
  w.f32s(ilu.factors_f32().data(), ilu.factors_f32().size());
  return w.take();
}

la::Ilu0 decode_ilu0_f32(std::string_view payload) {
  PayloadReader r(payload);
  const std::size_t rows = static_cast<std::size_t>(r.u64());
  const std::size_t cols = static_cast<std::size_t>(r.u64());
  const std::size_t nnz = static_cast<std::size_t>(r.u64());
  std::vector<std::size_t> row_ptr = r.indices(rows + 1);
  std::vector<std::size_t> col_idx = r.indices(nnz);
  std::vector<float> values_f32(nnz);
  r.f32s(values_f32.data(), nnz);
  r.done();
  UPDEC_REQUIRE(!row_ptr.empty() && row_ptr.front() == 0 &&
                    row_ptr.back() == nnz,
                "disk payload: inconsistent CSR row pointers");
  for (std::size_t i = 0; i + 1 < row_ptr.size(); ++i)
    UPDEC_REQUIRE(row_ptr[i] <= row_ptr[i + 1],
                  "disk payload: CSR row pointers not monotone");
  for (const std::size_t c : col_idx)
    UPDEC_REQUIRE(c < cols, "disk payload: CSR column index out of range");
  // Widen each stored float exactly; Ilu0::from_factors re-derives the fp32
  // shadow from these doubles, reproducing the persisted floats bit-exactly.
  std::vector<double> values(nnz);
  for (std::size_t k = 0; k < nnz; ++k)
    values[k] = static_cast<double>(values_f32[k]);
  return la::Ilu0::from_factors(la::CsrMatrix(
      rows, cols, std::move(row_ptr), std::move(col_idx), std::move(values)));
}

std::size_t pod_basis_bytes(const rom::PodBasis& basis) {
  return basis.modes.rows() * basis.modes.cols() * sizeof(double) +
         basis.eigenvalues.size() * sizeof(double);
}

std::string encode_pod_basis(const rom::PodBasis& basis) {
  PayloadWriter w;
  w.u64(basis.n());
  w.u64(basis.k());
  w.u64(basis.snapshot_count);
  w.f64s(basis.modes.data(), basis.n() * basis.k());
  w.f64s(basis.eigenvalues.data(), basis.eigenvalues.size());
  return w.take();
}

rom::PodBasis decode_pod_basis(std::string_view payload) {
  PayloadReader r(payload);
  const std::size_t n = static_cast<std::size_t>(r.u64());
  const std::size_t k = static_cast<std::size_t>(r.u64());
  rom::PodBasis basis;
  basis.snapshot_count = static_cast<std::size_t>(r.u64());
  UPDEC_REQUIRE(k <= n, "disk payload: pod-basis rank exceeds dimension");
  basis.modes = la::Matrix(n, k);
  r.f64s(basis.modes.data(), n * k);
  basis.eigenvalues = la::Vector(k);
  r.f64s(basis.eigenvalues.data(), k);
  r.done();
  // A checksum-clean payload can still be semantically bad (written by a
  // buggy producer): reject anything that is not an orthonormal basis with
  // finite, positive, descending energies rather than serving garbage.
  for (std::size_t j = 0; j < k; ++j) {
    UPDEC_REQUIRE(std::isfinite(basis.eigenvalues[j]) &&
                      basis.eigenvalues[j] > 0.0,
                  "disk payload: pod-basis eigenvalue not positive");
    UPDEC_REQUIRE(j == 0 || basis.eigenvalues[j] <= basis.eigenvalues[j - 1],
                  "disk payload: pod-basis eigenvalues not descending");
  }
  for (std::size_t i = 0; i < n * k; ++i)
    UPDEC_REQUIRE(std::isfinite(basis.modes.data()[i]),
                  "disk payload: pod-basis mode entry not finite");
  UPDEC_REQUIRE(k == 0 || basis.orthonormality_defect() < 1e-6,
                "disk payload: pod-basis modes not orthonormal");
  return basis;
}

// ---- memoization helpers -------------------------------------------------

std::shared_ptr<const la::LuFactorization> cached_lu(
    OperatorCache& cache, const rbf::GlobalCollocation& colloc) {
  KeyBuilder kb("lu-factorization");
  kb.add(colloc.content_hash());
  kb.add(static_cast<std::uint64_t>(colloc.system_size()));
  return cache.get_or_compute_disk<la::LuFactorization>(
      kb.key(),
      [&colloc] {
        UPDEC_TRACE_SCOPE("serve/cache_factor");
        std::shared_ptr<const la::LuFactorization> lu = colloc.shared_lu();
        return OperatorCache::Sized<la::LuFactorization>{lu, lu_bytes(*lu)};
      },
      encode_lu,
      [](std::string_view payload) {
        UPDEC_TRACE_SCOPE("serve/cache_disk_load");
        auto lu = std::make_shared<const la::LuFactorization>(
            decode_lu(payload));
        return OperatorCache::Sized<la::LuFactorization>{lu, lu_bytes(*lu)};
      },
      "lu");
}

void memoize_lu(OperatorCache& cache, rbf::GlobalCollocation& colloc) {
  colloc.install_lu(cached_lu(cache, colloc));
}

std::shared_ptr<const la::CsrMatrix> cached_rbffd_weights(
    OperatorCache& cache, const rbf::RbffdOperators& ops,
    const rbf::LinearOp& op) {
  KeyBuilder kb("rbffd-weights");
  kb.add(fingerprint(ops.cloud()));
  kb.add(fingerprint(ops.kernel()));
  kb.add(static_cast<std::uint64_t>(ops.config().stencil_size));
  kb.add(static_cast<std::int64_t>(ops.config().poly_degree));
  kb.add(fingerprint(op));
  return cache.get_or_compute_disk<la::CsrMatrix>(
      kb.key(),
      [&ops, &op] {
        UPDEC_TRACE_SCOPE("serve/cache_rbffd");
        auto w = std::make_shared<const la::CsrMatrix>(ops.weights_for(op));
        return OperatorCache::Sized<la::CsrMatrix>{w, csr_bytes(*w)};
      },
      encode_csr,
      [](std::string_view payload) {
        UPDEC_TRACE_SCOPE("serve/cache_disk_load");
        auto w = std::make_shared<const la::CsrMatrix>(decode_csr(payload));
        return OperatorCache::Sized<la::CsrMatrix>{w, csr_bytes(*w)};
      },
      "rbffd");
}

std::size_t csr_bytes(const la::CsrMatrix& m) {
  return m.values().size() * sizeof(double) +
         m.col_idx().size() * sizeof(std::size_t) +
         m.row_ptr().size() * sizeof(std::size_t);
}

std::size_t ilu0_bytes(const la::Ilu0& ilu) {
  // Factors share A's sparsity pattern; add the diagonal-position index.
  return csr_bytes(ilu.factors()) + ilu.factors().rows() * sizeof(std::size_t);
}

std::shared_ptr<const la::Ilu0> cached_ilu0(OperatorCache& cache,
                                            const la::CsrMatrix& a,
                                            bool fp32_factors) {
  // Distinct key domains: the fp32 artefact loses the low double bits, so it
  // must never be served to (or overwrite) a caller expecting fp64 factors.
  KeyBuilder kb(fp32_factors ? "ilu0-f32" : "ilu0");
  kb.add(fingerprint(a));
  kb.add(static_cast<std::uint64_t>(a.rows()));
  const auto encode = fp32_factors ? encode_ilu0_f32 : encode_ilu0;
  const auto decode = fp32_factors ? decode_ilu0_f32 : decode_ilu0;
  return cache.get_or_compute_disk<la::Ilu0>(
      kb.key(),
      [&a] {
        UPDEC_TRACE_SCOPE("serve/cache_ilu0");
        auto ilu = std::make_shared<const la::Ilu0>(a);
        const std::size_t bytes = ilu0_bytes(*ilu);
        return OperatorCache::Sized<la::Ilu0>{std::move(ilu), bytes};
      },
      encode,
      [decode](std::string_view payload) {
        UPDEC_TRACE_SCOPE("serve/cache_disk_load");
        auto ilu = std::make_shared<const la::Ilu0>(decode(payload));
        return OperatorCache::Sized<la::Ilu0>{ilu, ilu0_bytes(*ilu)};
      },
      fp32_factors ? "ilu0-f32" : "ilu0");
}

void memoize_preconditioner(OperatorCache& cache, la::SparseFirstSolver& op) {
  if (!op.valid() || !op.sparse_path()) return;
  // The Krylov chain runs against the row-equilibrated operator, so the
  // memoized factors must be computed from (and keyed on) that matrix. A
  // mixed-precision solver gets the fp32 artefact variant -- install then
  // wires its fp32 closure into stage 1 via options().mixed_precision.
  op.install_preconditioner(cached_ilu0(cache, op.krylov_matrix(),
                                        op.options().mixed_precision));
}

CacheKey pod_basis_key(std::uint64_t operator_fingerprint) {
  KeyBuilder kb("pod-basis");
  kb.add(operator_fingerprint);
  return kb.key();
}

std::shared_ptr<const rom::PodBasis> cached_pod_basis(
    OperatorCache& cache, std::uint64_t operator_fingerprint) {
  return cache.try_get_disk<rom::PodBasis>(
      pod_basis_key(operator_fingerprint),
      [](std::string_view payload) {
        UPDEC_TRACE_SCOPE("serve/cache_disk_load");
        auto basis =
            std::make_shared<const rom::PodBasis>(decode_pod_basis(payload));
        return OperatorCache::Sized<rom::PodBasis>{basis,
                                                   pod_basis_bytes(*basis)};
      },
      "pod-basis");
}

void store_pod_basis(OperatorCache& cache, std::uint64_t operator_fingerprint,
                     const rom::PodBasis& basis) {
  auto copy = std::make_shared<const rom::PodBasis>(basis);
  const std::size_t bytes = pod_basis_bytes(*copy);
  cache.put_disk<rom::PodBasis>(
      pod_basis_key(operator_fingerprint),
      OperatorCache::Sized<rom::PodBasis>{std::move(copy), bytes},
      encode_pod_basis, "pod-basis");
}

}  // namespace updec::serve
