file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_reynolds.dir/bench_ablation_reynolds.cpp.o"
  "CMakeFiles/bench_ablation_reynolds.dir/bench_ablation_reynolds.cpp.o.d"
  "bench_ablation_reynolds"
  "bench_ablation_reynolds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_reynolds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
