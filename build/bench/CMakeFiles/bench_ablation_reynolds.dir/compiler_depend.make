# Empty compiler generated dependencies file for bench_ablation_reynolds.
# This may be replaced when dependencies are built.
