# Empty compiler generated dependencies file for bench_fig1_fig4_navier_stokes.
# This may be replaced when dependencies are built.
