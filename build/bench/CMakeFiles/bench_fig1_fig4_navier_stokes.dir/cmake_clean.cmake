file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_fig4_navier_stokes.dir/bench_fig1_fig4_navier_stokes.cpp.o"
  "CMakeFiles/bench_fig1_fig4_navier_stokes.dir/bench_fig1_fig4_navier_stokes.cpp.o.d"
  "bench_fig1_fig4_navier_stokes"
  "bench_fig1_fig4_navier_stokes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_fig4_navier_stokes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
