# Empty compiler generated dependencies file for bench_ablation_rbf_kernels.
# This may be replaced when dependencies are built.
