# Empty compiler generated dependencies file for bench_fig3_pinn_linesearch.
# This may be replaced when dependencies are built.
