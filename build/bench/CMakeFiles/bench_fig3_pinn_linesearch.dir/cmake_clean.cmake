file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_pinn_linesearch.dir/bench_fig3_pinn_linesearch.cpp.o"
  "CMakeFiles/bench_fig3_pinn_linesearch.dir/bench_fig3_pinn_linesearch.cpp.o.d"
  "bench_fig3_pinn_linesearch"
  "bench_fig3_pinn_linesearch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_pinn_linesearch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
