file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_laplace.dir/bench_fig3_laplace.cpp.o"
  "CMakeFiles/bench_fig3_laplace.dir/bench_fig3_laplace.cpp.o.d"
  "bench_fig3_laplace"
  "bench_fig3_laplace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_laplace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
