# Empty dependencies file for bench_ablation_memory_vs_k.
# This may be replaced when dependencies are built.
