# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_la_dense[1]_include.cmake")
include("/root/repo/build/tests/test_la_solvers[1]_include.cmake")
include("/root/repo/build/tests/test_la_sparse[1]_include.cmake")
include("/root/repo/build/tests/test_la_eigen[1]_include.cmake")
include("/root/repo/build/tests/test_autodiff_tape[1]_include.cmake")
include("/root/repo/build/tests/test_autodiff_ops[1]_include.cmake")
include("/root/repo/build/tests/test_autodiff_dual[1]_include.cmake")
include("/root/repo/build/tests/test_pointcloud[1]_include.cmake")
include("/root/repo/build/tests/test_rbf_kernels[1]_include.cmake")
include("/root/repo/build/tests/test_rbf_collocation[1]_include.cmake")
include("/root/repo/build/tests/test_pde_laplace[1]_include.cmake")
include("/root/repo/build/tests/test_pde_channel[1]_include.cmake")
include("/root/repo/build/tests/test_pde_heat[1]_include.cmake")
include("/root/repo/build/tests/test_nn_optim[1]_include.cmake")
include("/root/repo/build/tests/test_control_laplace[1]_include.cmake")
include("/root/repo/build/tests/test_control_channel[1]_include.cmake")
include("/root/repo/build/tests/test_control_pinn[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_resilience[1]_include.cmake")
include("/root/repo/build/tests/test_sph[1]_include.cmake")
