# Empty dependencies file for test_pde_channel.
# This may be replaced when dependencies are built.
