file(REMOVE_RECURSE
  "CMakeFiles/test_pde_channel.dir/test_pde_channel.cpp.o"
  "CMakeFiles/test_pde_channel.dir/test_pde_channel.cpp.o.d"
  "test_pde_channel"
  "test_pde_channel.pdb"
  "test_pde_channel[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pde_channel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
