# Empty compiler generated dependencies file for test_control_pinn.
# This may be replaced when dependencies are built.
