file(REMOVE_RECURSE
  "CMakeFiles/test_control_pinn.dir/test_control_pinn.cpp.o"
  "CMakeFiles/test_control_pinn.dir/test_control_pinn.cpp.o.d"
  "test_control_pinn"
  "test_control_pinn.pdb"
  "test_control_pinn[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_control_pinn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
