file(REMOVE_RECURSE
  "CMakeFiles/test_rbf_kernels.dir/test_rbf_kernels.cpp.o"
  "CMakeFiles/test_rbf_kernels.dir/test_rbf_kernels.cpp.o.d"
  "test_rbf_kernels"
  "test_rbf_kernels.pdb"
  "test_rbf_kernels[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rbf_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
