file(REMOVE_RECURSE
  "CMakeFiles/test_autodiff_dual.dir/test_autodiff_dual.cpp.o"
  "CMakeFiles/test_autodiff_dual.dir/test_autodiff_dual.cpp.o.d"
  "test_autodiff_dual"
  "test_autodiff_dual.pdb"
  "test_autodiff_dual[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_autodiff_dual.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
