# Empty compiler generated dependencies file for test_autodiff_dual.
# This may be replaced when dependencies are built.
