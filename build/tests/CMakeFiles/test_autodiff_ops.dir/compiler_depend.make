# Empty compiler generated dependencies file for test_autodiff_ops.
# This may be replaced when dependencies are built.
