file(REMOVE_RECURSE
  "CMakeFiles/test_autodiff_ops.dir/test_autodiff_ops.cpp.o"
  "CMakeFiles/test_autodiff_ops.dir/test_autodiff_ops.cpp.o.d"
  "test_autodiff_ops"
  "test_autodiff_ops.pdb"
  "test_autodiff_ops[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_autodiff_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
