# Empty compiler generated dependencies file for test_pde_laplace.
# This may be replaced when dependencies are built.
