file(REMOVE_RECURSE
  "CMakeFiles/test_pde_laplace.dir/test_pde_laplace.cpp.o"
  "CMakeFiles/test_pde_laplace.dir/test_pde_laplace.cpp.o.d"
  "test_pde_laplace"
  "test_pde_laplace.pdb"
  "test_pde_laplace[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pde_laplace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
