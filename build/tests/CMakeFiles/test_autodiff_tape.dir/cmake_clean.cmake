file(REMOVE_RECURSE
  "CMakeFiles/test_autodiff_tape.dir/test_autodiff_tape.cpp.o"
  "CMakeFiles/test_autodiff_tape.dir/test_autodiff_tape.cpp.o.d"
  "test_autodiff_tape"
  "test_autodiff_tape.pdb"
  "test_autodiff_tape[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_autodiff_tape.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
