# Empty dependencies file for test_autodiff_tape.
# This may be replaced when dependencies are built.
