file(REMOVE_RECURSE
  "CMakeFiles/test_pointcloud.dir/test_pointcloud.cpp.o"
  "CMakeFiles/test_pointcloud.dir/test_pointcloud.cpp.o.d"
  "test_pointcloud"
  "test_pointcloud.pdb"
  "test_pointcloud[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pointcloud.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
