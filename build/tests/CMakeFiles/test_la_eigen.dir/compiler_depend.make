# Empty compiler generated dependencies file for test_la_eigen.
# This may be replaced when dependencies are built.
