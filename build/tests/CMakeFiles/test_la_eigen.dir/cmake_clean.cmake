file(REMOVE_RECURSE
  "CMakeFiles/test_la_eigen.dir/test_la_eigen.cpp.o"
  "CMakeFiles/test_la_eigen.dir/test_la_eigen.cpp.o.d"
  "test_la_eigen"
  "test_la_eigen.pdb"
  "test_la_eigen[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_la_eigen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
