file(REMOVE_RECURSE
  "CMakeFiles/test_control_laplace.dir/test_control_laplace.cpp.o"
  "CMakeFiles/test_control_laplace.dir/test_control_laplace.cpp.o.d"
  "test_control_laplace"
  "test_control_laplace.pdb"
  "test_control_laplace[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_control_laplace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
