# Empty dependencies file for test_control_laplace.
# This may be replaced when dependencies are built.
