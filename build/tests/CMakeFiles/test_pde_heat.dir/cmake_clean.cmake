file(REMOVE_RECURSE
  "CMakeFiles/test_pde_heat.dir/test_pde_heat.cpp.o"
  "CMakeFiles/test_pde_heat.dir/test_pde_heat.cpp.o.d"
  "test_pde_heat"
  "test_pde_heat.pdb"
  "test_pde_heat[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pde_heat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
