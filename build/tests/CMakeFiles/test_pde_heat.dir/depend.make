# Empty dependencies file for test_pde_heat.
# This may be replaced when dependencies are built.
