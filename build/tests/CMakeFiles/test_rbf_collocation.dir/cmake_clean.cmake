file(REMOVE_RECURSE
  "CMakeFiles/test_rbf_collocation.dir/test_rbf_collocation.cpp.o"
  "CMakeFiles/test_rbf_collocation.dir/test_rbf_collocation.cpp.o.d"
  "test_rbf_collocation"
  "test_rbf_collocation.pdb"
  "test_rbf_collocation[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rbf_collocation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
