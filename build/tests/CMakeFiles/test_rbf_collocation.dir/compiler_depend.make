# Empty compiler generated dependencies file for test_rbf_collocation.
# This may be replaced when dependencies are built.
