
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_resilience.cpp" "tests/CMakeFiles/test_resilience.dir/test_resilience.cpp.o" "gcc" "tests/CMakeFiles/test_resilience.dir/test_resilience.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/control/CMakeFiles/updec_control.dir/DependInfo.cmake"
  "/root/repo/build/src/pde/CMakeFiles/updec_pde.dir/DependInfo.cmake"
  "/root/repo/build/src/rbf/CMakeFiles/updec_rbf.dir/DependInfo.cmake"
  "/root/repo/build/src/pointcloud/CMakeFiles/updec_pc.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/updec_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/autodiff/CMakeFiles/updec_ad.dir/DependInfo.cmake"
  "/root/repo/build/src/optim/CMakeFiles/updec_optim.dir/DependInfo.cmake"
  "/root/repo/build/src/la/CMakeFiles/updec_la.dir/DependInfo.cmake"
  "/root/repo/build/src/sph/CMakeFiles/updec_sph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/updec_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
