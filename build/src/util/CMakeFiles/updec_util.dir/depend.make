# Empty dependencies file for updec_util.
# This may be replaced when dependencies are built.
