file(REMOVE_RECURSE
  "libupdec_util.a"
)
