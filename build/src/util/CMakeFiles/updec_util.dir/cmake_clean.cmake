file(REMOVE_RECURSE
  "CMakeFiles/updec_util.dir/cli.cpp.o"
  "CMakeFiles/updec_util.dir/cli.cpp.o.d"
  "CMakeFiles/updec_util.dir/csv.cpp.o"
  "CMakeFiles/updec_util.dir/csv.cpp.o.d"
  "CMakeFiles/updec_util.dir/faultinject.cpp.o"
  "CMakeFiles/updec_util.dir/faultinject.cpp.o.d"
  "CMakeFiles/updec_util.dir/log.cpp.o"
  "CMakeFiles/updec_util.dir/log.cpp.o.d"
  "CMakeFiles/updec_util.dir/memory.cpp.o"
  "CMakeFiles/updec_util.dir/memory.cpp.o.d"
  "CMakeFiles/updec_util.dir/rng.cpp.o"
  "CMakeFiles/updec_util.dir/rng.cpp.o.d"
  "CMakeFiles/updec_util.dir/table.cpp.o"
  "CMakeFiles/updec_util.dir/table.cpp.o.d"
  "libupdec_util.a"
  "libupdec_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/updec_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
