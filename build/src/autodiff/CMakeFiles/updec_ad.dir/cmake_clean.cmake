file(REMOVE_RECURSE
  "CMakeFiles/updec_ad.dir/ops.cpp.o"
  "CMakeFiles/updec_ad.dir/ops.cpp.o.d"
  "CMakeFiles/updec_ad.dir/tape.cpp.o"
  "CMakeFiles/updec_ad.dir/tape.cpp.o.d"
  "libupdec_ad.a"
  "libupdec_ad.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/updec_ad.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
