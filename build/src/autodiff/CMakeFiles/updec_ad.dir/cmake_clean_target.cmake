file(REMOVE_RECURSE
  "libupdec_ad.a"
)
