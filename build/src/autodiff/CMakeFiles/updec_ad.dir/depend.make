# Empty dependencies file for updec_ad.
# This may be replaced when dependencies are built.
