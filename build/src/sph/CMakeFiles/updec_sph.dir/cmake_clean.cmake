file(REMOVE_RECURSE
  "CMakeFiles/updec_sph.dir/sph.cpp.o"
  "CMakeFiles/updec_sph.dir/sph.cpp.o.d"
  "libupdec_sph.a"
  "libupdec_sph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/updec_sph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
