file(REMOVE_RECURSE
  "libupdec_sph.a"
)
