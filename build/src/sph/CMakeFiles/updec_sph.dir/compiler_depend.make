# Empty compiler generated dependencies file for updec_sph.
# This may be replaced when dependencies are built.
