file(REMOVE_RECURSE
  "libupdec_rbf.a"
)
