# Empty dependencies file for updec_rbf.
# This may be replaced when dependencies are built.
