file(REMOVE_RECURSE
  "CMakeFiles/updec_rbf.dir/collocation.cpp.o"
  "CMakeFiles/updec_rbf.dir/collocation.cpp.o.d"
  "CMakeFiles/updec_rbf.dir/interpolation.cpp.o"
  "CMakeFiles/updec_rbf.dir/interpolation.cpp.o.d"
  "CMakeFiles/updec_rbf.dir/kernels.cpp.o"
  "CMakeFiles/updec_rbf.dir/kernels.cpp.o.d"
  "CMakeFiles/updec_rbf.dir/operators.cpp.o"
  "CMakeFiles/updec_rbf.dir/operators.cpp.o.d"
  "CMakeFiles/updec_rbf.dir/rbffd.cpp.o"
  "CMakeFiles/updec_rbf.dir/rbffd.cpp.o.d"
  "libupdec_rbf.a"
  "libupdec_rbf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/updec_rbf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
