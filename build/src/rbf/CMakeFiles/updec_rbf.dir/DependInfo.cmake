
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rbf/collocation.cpp" "src/rbf/CMakeFiles/updec_rbf.dir/collocation.cpp.o" "gcc" "src/rbf/CMakeFiles/updec_rbf.dir/collocation.cpp.o.d"
  "/root/repo/src/rbf/interpolation.cpp" "src/rbf/CMakeFiles/updec_rbf.dir/interpolation.cpp.o" "gcc" "src/rbf/CMakeFiles/updec_rbf.dir/interpolation.cpp.o.d"
  "/root/repo/src/rbf/kernels.cpp" "src/rbf/CMakeFiles/updec_rbf.dir/kernels.cpp.o" "gcc" "src/rbf/CMakeFiles/updec_rbf.dir/kernels.cpp.o.d"
  "/root/repo/src/rbf/operators.cpp" "src/rbf/CMakeFiles/updec_rbf.dir/operators.cpp.o" "gcc" "src/rbf/CMakeFiles/updec_rbf.dir/operators.cpp.o.d"
  "/root/repo/src/rbf/rbffd.cpp" "src/rbf/CMakeFiles/updec_rbf.dir/rbffd.cpp.o" "gcc" "src/rbf/CMakeFiles/updec_rbf.dir/rbffd.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/la/CMakeFiles/updec_la.dir/DependInfo.cmake"
  "/root/repo/build/src/pointcloud/CMakeFiles/updec_pc.dir/DependInfo.cmake"
  "/root/repo/build/src/autodiff/CMakeFiles/updec_ad.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/updec_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
