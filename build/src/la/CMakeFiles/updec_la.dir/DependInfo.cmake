
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/la/blas.cpp" "src/la/CMakeFiles/updec_la.dir/blas.cpp.o" "gcc" "src/la/CMakeFiles/updec_la.dir/blas.cpp.o.d"
  "/root/repo/src/la/cholesky.cpp" "src/la/CMakeFiles/updec_la.dir/cholesky.cpp.o" "gcc" "src/la/CMakeFiles/updec_la.dir/cholesky.cpp.o.d"
  "/root/repo/src/la/dense.cpp" "src/la/CMakeFiles/updec_la.dir/dense.cpp.o" "gcc" "src/la/CMakeFiles/updec_la.dir/dense.cpp.o.d"
  "/root/repo/src/la/eigen.cpp" "src/la/CMakeFiles/updec_la.dir/eigen.cpp.o" "gcc" "src/la/CMakeFiles/updec_la.dir/eigen.cpp.o.d"
  "/root/repo/src/la/iterative.cpp" "src/la/CMakeFiles/updec_la.dir/iterative.cpp.o" "gcc" "src/la/CMakeFiles/updec_la.dir/iterative.cpp.o.d"
  "/root/repo/src/la/lu.cpp" "src/la/CMakeFiles/updec_la.dir/lu.cpp.o" "gcc" "src/la/CMakeFiles/updec_la.dir/lu.cpp.o.d"
  "/root/repo/src/la/qr.cpp" "src/la/CMakeFiles/updec_la.dir/qr.cpp.o" "gcc" "src/la/CMakeFiles/updec_la.dir/qr.cpp.o.d"
  "/root/repo/src/la/robust_solve.cpp" "src/la/CMakeFiles/updec_la.dir/robust_solve.cpp.o" "gcc" "src/la/CMakeFiles/updec_la.dir/robust_solve.cpp.o.d"
  "/root/repo/src/la/sparse.cpp" "src/la/CMakeFiles/updec_la.dir/sparse.cpp.o" "gcc" "src/la/CMakeFiles/updec_la.dir/sparse.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/updec_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
