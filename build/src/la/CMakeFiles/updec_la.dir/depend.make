# Empty dependencies file for updec_la.
# This may be replaced when dependencies are built.
