file(REMOVE_RECURSE
  "CMakeFiles/updec_la.dir/blas.cpp.o"
  "CMakeFiles/updec_la.dir/blas.cpp.o.d"
  "CMakeFiles/updec_la.dir/cholesky.cpp.o"
  "CMakeFiles/updec_la.dir/cholesky.cpp.o.d"
  "CMakeFiles/updec_la.dir/dense.cpp.o"
  "CMakeFiles/updec_la.dir/dense.cpp.o.d"
  "CMakeFiles/updec_la.dir/eigen.cpp.o"
  "CMakeFiles/updec_la.dir/eigen.cpp.o.d"
  "CMakeFiles/updec_la.dir/iterative.cpp.o"
  "CMakeFiles/updec_la.dir/iterative.cpp.o.d"
  "CMakeFiles/updec_la.dir/lu.cpp.o"
  "CMakeFiles/updec_la.dir/lu.cpp.o.d"
  "CMakeFiles/updec_la.dir/qr.cpp.o"
  "CMakeFiles/updec_la.dir/qr.cpp.o.d"
  "CMakeFiles/updec_la.dir/robust_solve.cpp.o"
  "CMakeFiles/updec_la.dir/robust_solve.cpp.o.d"
  "CMakeFiles/updec_la.dir/sparse.cpp.o"
  "CMakeFiles/updec_la.dir/sparse.cpp.o.d"
  "libupdec_la.a"
  "libupdec_la.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/updec_la.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
