file(REMOVE_RECURSE
  "libupdec_la.a"
)
