file(REMOVE_RECURSE
  "CMakeFiles/updec_optim.dir/lbfgs.cpp.o"
  "CMakeFiles/updec_optim.dir/lbfgs.cpp.o.d"
  "CMakeFiles/updec_optim.dir/optimizer.cpp.o"
  "CMakeFiles/updec_optim.dir/optimizer.cpp.o.d"
  "libupdec_optim.a"
  "libupdec_optim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/updec_optim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
