file(REMOVE_RECURSE
  "libupdec_optim.a"
)
