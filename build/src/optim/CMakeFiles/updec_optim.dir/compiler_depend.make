# Empty compiler generated dependencies file for updec_optim.
# This may be replaced when dependencies are built.
