file(REMOVE_RECURSE
  "libupdec_nn.a"
)
