file(REMOVE_RECURSE
  "CMakeFiles/updec_nn.dir/mlp.cpp.o"
  "CMakeFiles/updec_nn.dir/mlp.cpp.o.d"
  "libupdec_nn.a"
  "libupdec_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/updec_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
