# Empty dependencies file for updec_nn.
# This may be replaced when dependencies are built.
