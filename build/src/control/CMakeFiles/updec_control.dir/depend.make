# Empty dependencies file for updec_control.
# This may be replaced when dependencies are built.
