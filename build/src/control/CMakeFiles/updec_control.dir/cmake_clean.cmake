file(REMOVE_RECURSE
  "CMakeFiles/updec_control.dir/channel_problem.cpp.o"
  "CMakeFiles/updec_control.dir/channel_problem.cpp.o.d"
  "CMakeFiles/updec_control.dir/driver.cpp.o"
  "CMakeFiles/updec_control.dir/driver.cpp.o.d"
  "CMakeFiles/updec_control.dir/laplace_problem.cpp.o"
  "CMakeFiles/updec_control.dir/laplace_problem.cpp.o.d"
  "CMakeFiles/updec_control.dir/omega_search.cpp.o"
  "CMakeFiles/updec_control.dir/omega_search.cpp.o.d"
  "CMakeFiles/updec_control.dir/pinn_channel.cpp.o"
  "CMakeFiles/updec_control.dir/pinn_channel.cpp.o.d"
  "CMakeFiles/updec_control.dir/pinn_laplace.cpp.o"
  "CMakeFiles/updec_control.dir/pinn_laplace.cpp.o.d"
  "libupdec_control.a"
  "libupdec_control.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/updec_control.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
