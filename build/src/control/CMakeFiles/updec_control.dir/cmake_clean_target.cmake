file(REMOVE_RECURSE
  "libupdec_control.a"
)
