# Empty dependencies file for updec_pde.
# This may be replaced when dependencies are built.
