file(REMOVE_RECURSE
  "libupdec_pde.a"
)
