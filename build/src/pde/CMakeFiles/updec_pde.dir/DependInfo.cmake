
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pde/channel_flow.cpp" "src/pde/CMakeFiles/updec_pde.dir/channel_flow.cpp.o" "gcc" "src/pde/CMakeFiles/updec_pde.dir/channel_flow.cpp.o.d"
  "/root/repo/src/pde/heat.cpp" "src/pde/CMakeFiles/updec_pde.dir/heat.cpp.o" "gcc" "src/pde/CMakeFiles/updec_pde.dir/heat.cpp.o.d"
  "/root/repo/src/pde/laplace.cpp" "src/pde/CMakeFiles/updec_pde.dir/laplace.cpp.o" "gcc" "src/pde/CMakeFiles/updec_pde.dir/laplace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rbf/CMakeFiles/updec_rbf.dir/DependInfo.cmake"
  "/root/repo/build/src/autodiff/CMakeFiles/updec_ad.dir/DependInfo.cmake"
  "/root/repo/build/src/pointcloud/CMakeFiles/updec_pc.dir/DependInfo.cmake"
  "/root/repo/build/src/la/CMakeFiles/updec_la.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/updec_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
