file(REMOVE_RECURSE
  "CMakeFiles/updec_pde.dir/channel_flow.cpp.o"
  "CMakeFiles/updec_pde.dir/channel_flow.cpp.o.d"
  "CMakeFiles/updec_pde.dir/heat.cpp.o"
  "CMakeFiles/updec_pde.dir/heat.cpp.o.d"
  "CMakeFiles/updec_pde.dir/laplace.cpp.o"
  "CMakeFiles/updec_pde.dir/laplace.cpp.o.d"
  "libupdec_pde.a"
  "libupdec_pde.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/updec_pde.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
