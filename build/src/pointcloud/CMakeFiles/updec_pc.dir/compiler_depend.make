# Empty compiler generated dependencies file for updec_pc.
# This may be replaced when dependencies are built.
