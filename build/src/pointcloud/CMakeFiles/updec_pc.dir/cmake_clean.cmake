file(REMOVE_RECURSE
  "CMakeFiles/updec_pc.dir/cloud.cpp.o"
  "CMakeFiles/updec_pc.dir/cloud.cpp.o.d"
  "CMakeFiles/updec_pc.dir/generators.cpp.o"
  "CMakeFiles/updec_pc.dir/generators.cpp.o.d"
  "CMakeFiles/updec_pc.dir/kdtree.cpp.o"
  "CMakeFiles/updec_pc.dir/kdtree.cpp.o.d"
  "libupdec_pc.a"
  "libupdec_pc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/updec_pc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
