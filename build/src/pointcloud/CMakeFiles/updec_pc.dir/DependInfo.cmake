
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pointcloud/cloud.cpp" "src/pointcloud/CMakeFiles/updec_pc.dir/cloud.cpp.o" "gcc" "src/pointcloud/CMakeFiles/updec_pc.dir/cloud.cpp.o.d"
  "/root/repo/src/pointcloud/generators.cpp" "src/pointcloud/CMakeFiles/updec_pc.dir/generators.cpp.o" "gcc" "src/pointcloud/CMakeFiles/updec_pc.dir/generators.cpp.o.d"
  "/root/repo/src/pointcloud/kdtree.cpp" "src/pointcloud/CMakeFiles/updec_pc.dir/kdtree.cpp.o" "gcc" "src/pointcloud/CMakeFiles/updec_pc.dir/kdtree.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/updec_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
