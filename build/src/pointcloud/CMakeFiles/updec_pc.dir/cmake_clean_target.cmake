file(REMOVE_RECURSE
  "libupdec_pc.a"
)
