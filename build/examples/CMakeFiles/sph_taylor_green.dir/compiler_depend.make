# Empty compiler generated dependencies file for sph_taylor_green.
# This may be replaced when dependencies are built.
