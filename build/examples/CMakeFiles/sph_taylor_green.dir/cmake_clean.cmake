file(REMOVE_RECURSE
  "CMakeFiles/sph_taylor_green.dir/sph_taylor_green.cpp.o"
  "CMakeFiles/sph_taylor_green.dir/sph_taylor_green.cpp.o.d"
  "sph_taylor_green"
  "sph_taylor_green.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sph_taylor_green.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
