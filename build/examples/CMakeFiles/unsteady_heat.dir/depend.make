# Empty dependencies file for unsteady_heat.
# This may be replaced when dependencies are built.
