file(REMOVE_RECURSE
  "CMakeFiles/unsteady_heat.dir/unsteady_heat.cpp.o"
  "CMakeFiles/unsteady_heat.dir/unsteady_heat.cpp.o.d"
  "unsteady_heat"
  "unsteady_heat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unsteady_heat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
