# Empty compiler generated dependencies file for rbf_interpolation.
# This may be replaced when dependencies are built.
