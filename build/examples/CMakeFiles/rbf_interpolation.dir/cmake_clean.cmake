file(REMOVE_RECURSE
  "CMakeFiles/rbf_interpolation.dir/rbf_interpolation.cpp.o"
  "CMakeFiles/rbf_interpolation.dir/rbf_interpolation.cpp.o.d"
  "rbf_interpolation"
  "rbf_interpolation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rbf_interpolation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
