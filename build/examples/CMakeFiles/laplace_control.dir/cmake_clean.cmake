file(REMOVE_RECURSE
  "CMakeFiles/laplace_control.dir/laplace_control.cpp.o"
  "CMakeFiles/laplace_control.dir/laplace_control.cpp.o.d"
  "laplace_control"
  "laplace_control.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/laplace_control.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
