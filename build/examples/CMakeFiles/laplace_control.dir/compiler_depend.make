# Empty compiler generated dependencies file for laplace_control.
# This may be replaced when dependencies are built.
