file(REMOVE_RECURSE
  "CMakeFiles/pinn_laplace.dir/pinn_laplace.cpp.o"
  "CMakeFiles/pinn_laplace.dir/pinn_laplace.cpp.o.d"
  "pinn_laplace"
  "pinn_laplace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pinn_laplace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
