# Empty dependencies file for pinn_laplace.
# This may be replaced when dependencies are built.
