file(REMOVE_RECURSE
  "CMakeFiles/channel_flow_control.dir/channel_flow_control.cpp.o"
  "CMakeFiles/channel_flow_control.dir/channel_flow_control.cpp.o.d"
  "channel_flow_control"
  "channel_flow_control.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/channel_flow_control.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
