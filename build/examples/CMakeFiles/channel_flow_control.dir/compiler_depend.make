# Empty compiler generated dependencies file for channel_flow_control.
# This may be replaced when dependencies are built.
