#!/usr/bin/env python3
"""Docs consistency checks, run by the `docs-check` CI job.

Two classes of drift this catches:

1. Broken relative links: every markdown link target in README.md and
   docs/*.md that is not an absolute URL must resolve to a file in the
   repository, as must every backticked reference to a `*.md` path
   (the docs cross-reference each other that way far more often than
   with actual markdown links).

2. Undocumented knobs: every environment variable the code reads (a
   quoted "UPDEC_*" string literal under src/) must have a row in the
   consolidated knob table of docs/OBSERVABILITY.md.

Run from anywhere: paths are resolved relative to the repository root
(the parent of this script's directory). Exits non-zero listing every
failure, so CI output shows all problems at once.
"""

import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent

MD_LINK = re.compile(r"\[[^\]]*\]\(([^)]+)\)")
BACKTICK_MD = re.compile(r"`([A-Za-z0-9_./-]+\.md)`")
ENV_LITERAL = re.compile(r'"(UPDEC_[A-Z0-9_]+)"')


def doc_files():
    yield ROOT / "README.md"
    yield from sorted((ROOT / "docs").glob("*.md"))


def check_links():
    errors = []
    for doc in doc_files():
        text = doc.read_text(encoding="utf-8")
        targets = []
        for match in MD_LINK.finditer(text):
            target = match.group(1).split("#", 1)[0].strip()
            if not target or "://" in target or target.startswith("mailto:"):
                continue
            targets.append((target, "link"))
        for match in BACKTICK_MD.finditer(text):
            targets.append((match.group(1), "reference"))
        for target, kind in targets:
            # Backticked paths are written repo-relative by convention;
            # markdown links are relative to the containing file. Accept
            # either resolution so the convention stays writable.
            if not ((ROOT / target).is_file() or (doc.parent / target).is_file()):
                errors.append(
                    f"{doc.relative_to(ROOT)}: broken {kind} -> {target}"
                )
    return errors


def check_knob_table():
    table = (ROOT / "docs" / "OBSERVABILITY.md").read_text(encoding="utf-8")
    documented = set(re.findall(r"\|\s*`(UPDEC_[A-Z0-9_]+)`", table))
    errors = []
    consumed = {}
    for source in sorted((ROOT / "src").rglob("*")):
        if source.suffix not in (".hpp", ".cpp"):
            continue
        for name in ENV_LITERAL.findall(source.read_text(encoding="utf-8")):
            consumed.setdefault(name, source.relative_to(ROOT))
    for name, where in sorted(consumed.items()):
        if name not in documented:
            errors.append(
                f"{where}: env knob {name} has no row in the "
                "docs/OBSERVABILITY.md knob table"
            )
    return errors


def main():
    errors = check_links() + check_knob_table()
    for error in errors:
        print(f"check_docs: {error}", file=sys.stderr)
    if errors:
        print(f"check_docs: {len(errors)} problem(s)", file=sys.stderr)
        return 1
    print("check_docs: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
